#!/usr/bin/env python3
"""Validate the wait-state / critical-path analysis blocks in a telemetry
JSONL stream produced by a rhea run with ALPS_TELEMETRY=1 ALPS_ANALYSIS=1.

Each per-step record (a line carrying a "step" field) must embed:

  "critical_path": {length_s, mean_s, imbalance, phases: [
      {phase, cp_s, mean_s, rank, imbalance}, ...]}
  "wait_states": {phases: [
      {phase, wall_s, late_sender_s, transfer_s, late_receiver_s,
       collective_s, max_blocked_s, recvs, waited_recvs, collectives,
       halo_ops, overlap?, blamed_rank?, blamed_s?}, ...]}

Checks (exit 1 with a message on the first failure):
  * every step record has both blocks and at least --min-steps records
    exist,
  * critical_path: length_s >= mean_s >= 0, every phase has
    cp_s >= mean_s >= 0 and imbalance >= 1 (up to rounding), and the
    critical rank is in [0, ranks),
  * wait_states: all buckets are >= 0 and, per phase, the locally-exact
    buckets (late_sender_s + transfer_s + collective_s) sum to no more
    than the rank-summed phase wall time (late_receiver_s is excluded:
    it measures message queue time hidden by the receiver's own work and
    may span phase boundaries),
  * achieved overlap, when present, lies in [0, 1],
  * blamed_rank, when present, is in [0, ranks) and blamed_s > 0,
  * with --expect-slow-rank N, at least one phase in some step blames
    rank N for late-sender time (validates the slow-rank test hook).

Usage:
  check_analysis.py alps_telemetry.jsonl --ranks 4 --min-steps 2 \
      --expect-slow-rank 1
"""

import argparse
import json
import sys

EPS = 1e-9       # absolute slack for float roundtrip through JSON
REL = 1.02       # 2% relative slack on the bucket <= wall invariant


def fail(msg: str) -> None:
    print(f"check_analysis: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_critical(step: int, cp: dict, ranks: int) -> None:
    for key in ("length_s", "mean_s", "imbalance", "phases"):
        if key not in cp:
            fail(f"step {step}: critical_path is missing \"{key}\"")
    if cp["mean_s"] < -EPS or cp["length_s"] < cp["mean_s"] - EPS:
        fail(f"step {step}: critical_path length_s {cp['length_s']} < "
             f"mean_s {cp['mean_s']}")
    for ph in cp["phases"]:
        name = ph.get("phase", "?")
        if ph["mean_s"] < -EPS or ph["cp_s"] < ph["mean_s"] - EPS:
            fail(f"step {step} phase {name}: cp_s {ph['cp_s']} < "
                 f"mean_s {ph['mean_s']}")
        if ph["imbalance"] < 1.0 - 1e-6:
            fail(f"step {step} phase {name}: imbalance {ph['imbalance']} < 1")
        if not 0 <= ph["rank"] < ranks:
            fail(f"step {step} phase {name}: critical rank {ph['rank']} "
                 f"outside [0, {ranks})")


def check_waits(step: int, ws: dict, ranks: int) -> set:
    if "phases" not in ws:
        fail(f"step {step}: wait_states is missing \"phases\"")
    blamed = set()
    for ph in ws["phases"]:
        name = ph.get("phase", "?")
        buckets = ("late_sender_s", "transfer_s", "late_receiver_s",
                   "collective_s")
        for b in buckets + ("wall_s", "max_blocked_s"):
            if b not in ph:
                fail(f"step {step} phase {name}: missing \"{b}\"")
            if ph[b] < -EPS:
                fail(f"step {step} phase {name}: {b} = {ph[b]} < 0")
        blocked = (ph["late_sender_s"] + ph["transfer_s"] +
                   ph["collective_s"])
        if blocked > ph["wall_s"] * REL + EPS:
            fail(f"step {step} phase {name}: blocked buckets sum to "
                 f"{blocked} > wall_s {ph['wall_s']}")
        if "overlap" in ph and not -EPS <= ph["overlap"] <= 1 + EPS:
            fail(f"step {step} phase {name}: overlap {ph['overlap']} "
                 f"outside [0, 1]")
        if "blamed_rank" in ph:
            if not 0 <= ph["blamed_rank"] < ranks:
                fail(f"step {step} phase {name}: blamed_rank "
                     f"{ph['blamed_rank']} outside [0, {ranks})")
            if ph.get("blamed_s", 0) <= 0:
                fail(f"step {step} phase {name}: blamed_rank present but "
                     f"blamed_s = {ph.get('blamed_s')}")
            blamed.add(ph["blamed_rank"])
    return blamed


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("telemetry", help="telemetry JSONL file")
    ap.add_argument("--ranks", type=int, default=0,
                    help="expected rank count (default: from the records)")
    ap.add_argument("--min-steps", type=int, default=1,
                    help="minimum number of analyzed step records")
    ap.add_argument("--expect-slow-rank", type=int, default=-1,
                    help="require some phase to blame this rank")
    args = ap.parse_args()

    try:
        with open(args.telemetry, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        fail(f"cannot read {args.telemetry}: {e}")

    steps = 0
    phases = set()
    blamed = set()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"line {i + 1} is not valid JSON: {e}")
        if "step" not in rec:
            continue
        step = rec["step"]
        ranks = args.ranks if args.ranks > 0 else rec.get("ranks", 1)
        for key in ("critical_path", "wait_states"):
            if key not in rec:
                fail(f"step {step} record has no \"{key}\" block "
                     f"(was the run started with ALPS_ANALYSIS=0?)")
        check_critical(step, rec["critical_path"], ranks)
        blamed |= check_waits(step, rec["wait_states"], ranks)
        phases |= {p["phase"] for p in rec["wait_states"]["phases"]}
        steps += 1

    if steps < args.min_steps:
        fail(f"expected >= {args.min_steps} analyzed step records, "
             f"found {steps}")
    if args.expect_slow_rank >= 0 and args.expect_slow_rank not in blamed:
        fail(f"no phase blamed rank {args.expect_slow_rank} for late-sender "
             f"time (blamed: {sorted(blamed)})")

    print(f"check_analysis: OK: {steps} analyzed steps, "
          f"{len(phases)} wait-state phases"
          + (f", blamed ranks {sorted(blamed)}" if blamed else ""))


if __name__ == "__main__":
    main()
