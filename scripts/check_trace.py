#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by alps::obs.

Checks (exit 1 with a message on the first failure):
  * the file parses as JSON and has a "traceEvents" list,
  * every complete ("X") event carries name/ts/dur with dur >= 0,
  * at least --ranks distinct tids each recorded at least one span,
  * every rank track declared by thread_name metadata recorded at least
    one span (an empty declared track means a rank lost its events),
  * the "alpsDropped" per-rank counts are all zero (a non-zero count means
    the ring overflowed and the trace is silently truncated),
  * every --require name appears among the recorded spans,
  * at least one properly nested span pair exists (same tid, containment),
    i.e. the scoped-span hierarchy survived export,
  * Perfetto flow events pair up: every flow id has exactly one start
    ("s") and one finish ("f"), the finish is not earlier than the start,
    and the two endpoints sit on different rank tracks (the arrows link
    exchange_start spans to the peer's finish spans); "alpsFlowDropped"
    counts must be zero; with --min-flows N, at least N pairs must exist.

Usage:
  check_trace.py TRACE.json --ranks 2 --require amg.vcycle la.cg \
      --min-flows 1
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--ranks", type=int, default=1,
                    help="minimum number of rank tracks expected")
    ap.add_argument("--require", nargs="*", default=[],
                    help="span names that must appear in the trace")
    ap.add_argument("--min-flows", type=int, default=0,
                    help="minimum number of matched flow s/f pairs")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{args.trace} is not valid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" list')

    spans_by_tid = defaultdict(list)
    declared_tids = set()
    names = set()
    flow_starts = {}
    flow_finishes = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"event {i} is not an object with a \"ph\" field")
        if ev["ph"] == "M" and ev.get("name") == "thread_name":
            declared_tids.add(ev.get("tid"))
        if ev["ph"] in ("s", "f"):
            for key in ("id", "tid", "ts", "name", "cat"):
                if key not in ev:
                    fail(f"flow event {i} is missing \"{key}\"")
            side = flow_starts if ev["ph"] == "s" else flow_finishes
            if ev["id"] in side:
                fail(f"flow id {ev['id']} has duplicate \"{ev['ph']}\" events")
            side[ev["id"]] = (ev["tid"], ev["ts"])
            continue
        if ev["ph"] != "X":
            continue
        for key in ("name", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"span event {i} is missing \"{key}\"")
        if ev["dur"] < 0:
            fail(f"span event {i} ({ev['name']}) has negative dur")
        spans_by_tid[ev["tid"]].append((ev["ts"], ev["ts"] + ev["dur"]))
        names.add(ev["name"])

    populated = [tid for tid, spans in spans_by_tid.items() if spans]
    if len(populated) < args.ranks:
        fail(f"expected >= {args.ranks} rank tracks with spans, "
             f"found {len(populated)} ({sorted(populated)})")

    empty = sorted(t for t in declared_tids if t not in spans_by_tid)
    if empty:
        fail(f"declared rank tracks recorded no spans: {empty}")

    dropped = doc.get("alpsDropped", [])
    if not isinstance(dropped, list):
        fail('"alpsDropped" is not a list')
    bad = {rank: n for rank, n in enumerate(dropped) if n > 0}
    if bad:
        fail(f"dropped span events (ring overflow, raise ALPS_TRACE_BUF): "
             f"{bad}")

    missing = [n for n in args.require if n not in names]
    if missing:
        fail(f"required span names not found: {missing} "
             f"(recorded: {sorted(names)})")

    unmatched = sorted(set(flow_starts) ^ set(flow_finishes))
    if unmatched:
        fail(f"{len(unmatched)} flow ids lack a matching s/f endpoint "
             f"(first: {unmatched[:5]})")
    for fid, (stid, sts) in flow_starts.items():
        ftid, fts = flow_finishes[fid]
        if fts < sts:
            fail(f"flow id {fid} finishes at {fts} before its start {sts}")
        if ftid == stid:
            fail(f"flow id {fid} starts and finishes on the same rank track "
                 f"{stid}")
    flow_dropped = doc.get("alpsFlowDropped", [])
    if not isinstance(flow_dropped, list):
        fail('"alpsFlowDropped" is not a list')
    bad_flows = {rank: n for rank, n in enumerate(flow_dropped) if n > 0}
    if bad_flows:
        fail(f"dropped flow events (ring overflow, raise ALPS_TRACE_BUF): "
             f"{bad_flows}")
    if len(flow_starts) < args.min_flows:
        fail(f"expected >= {args.min_flows} flow pairs, "
             f"found {len(flow_starts)}")

    nested = False
    for spans in spans_by_tid.values():
        spans.sort()
        for j in range(1, len(spans)):
            a, b = spans[j - 1], spans[j]
            inner_in_outer = a[0] <= b[0] and b[1] <= a[1]
            outer_in_inner = b[0] <= a[0] and a[1] <= b[1]
            if (inner_in_outer or outer_in_inner) and a != b:
                nested = True
                break
        if nested:
            break
    if not nested:
        fail("no nested span pair found on any rank track")

    total = sum(len(s) for s in spans_by_tid.values())
    print(f"check_trace: OK: {total} spans on {len(populated)} rank tracks, "
          f"{len(names)} distinct span names")


if __name__ == "__main__":
    main()
