// Quickstart: a tour of the ALPS public API in ~100 lines.
//
//   1. build a forest-of-octrees mesh and adapt it,
//   2. enforce 2:1 balance and repartition along the space-filling curve,
//   3. extract a finite element mesh with hanging-node constraints,
//   4. solve a variable-coefficient Poisson problem with CG + AMG,
//   5. print a summary.
//
// Run:  ./quickstart [ranks]
// Set ALPS_TRACE=1 to also write a Chrome/Perfetto trace of the run
// (quickstart_trace.json, one timeline track per rank).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "amg/dist_amg.hpp"
#include "fem/operators.hpp"
#include "mesh/mesh.hpp"
#include "obs/obs.hpp"
#include "par/runtime.hpp"

using namespace alps;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::max(1, std::atoi(argv[1])) : 2;
  std::printf("ALPS quickstart on %d simulated ranks\n", ranks);

  alps::par::run(ranks, [](par::Comm& comm) {
    // 1. A uniform level-3 octree on the unit cube (one tree; try
    //    Connectivity::brick or cubed_sphere_shell for forests).
    forest::Forest forest = forest::Forest::new_uniform(
        comm, forest::Connectivity::unit_cube(), 3);

    // Refine every element whose center lies inside a ball: this creates
    // hanging nodes on the ball's surface.
    std::vector<std::int8_t> flags(forest.tree().leaves().size(), 0);
    for (std::size_t e = 0; e < flags.size(); ++e) {
      const auto& o = forest.tree().leaves()[e];
      const auto h = octree::octant_len(o.level);
      const auto p = forest.connectivity().map_point(o.tree, o.x + h / 2,
                                                     o.y + h / 2, o.z + h / 2);
      const double r2 = (p[0] - 0.5) * (p[0] - 0.5) +
                        (p[1] - 0.5) * (p[1] - 0.5) +
                        (p[2] - 0.5) * (p[2] - 0.5);
      if (r2 < 0.09) flags[e] = 1;
    }
    forest.tree().adapt(flags, 0, 6);
    forest.tree().update_ranges(comm);

    // 2. 2:1 balance + SFC repartition.
    forest.balance(comm);
    forest.partition(comm);

    // 3. Extract the FEM mesh: global numbering, constraints, ghosts.
    mesh::Mesh m = mesh::extract_mesh(comm, forest);

    // 4. Solve -div(k grad u) = 0, u = x + y on the boundary, with a
    //    coefficient jump of 100 across the mid-plane.
    fem::ElementOperator op = fem::build_scalar_laplace(
        m, forest.connectivity(),
        [](const std::array<double, 3>& p) { return p[2] > 0.5 ? 100.0 : 1.0; },
        /*dirichlet_faces=*/0b111111);
    std::vector<double> g(static_cast<std::size_t>(m.n_local), 0.0);
    for (std::int64_t i = 0; i < m.n_local; ++i)
      if (m.dof_boundary[static_cast<std::size_t>(i)])
        g[static_cast<std::size_t>(i)] =
            m.dof_coords[static_cast<std::size_t>(i)][0] +
            m.dof_coords[static_cast<std::size_t>(i)][1];
    std::vector<double> b(static_cast<std::size_t>(m.n_local), 0.0);
    op.lift_bcs(comm, g, b);

    // AMG-preconditioned CG: the owned-row distributed assembly and the
    // distributed hierarchy keep every rank at O(N_local) storage (see
    // DESIGN.md §7 for the layout and the BoomerAMG substitution). Owned
    // dofs [0, n_owned) carry gids gid_offset + i, so solver vectors are
    // just the owned slice of a mesh field; one halo exchange refreshes
    // the ghosts afterwards.
    amg::DistAmg amg(comm, op.assemble_dist(comm), {});
    std::vector<double> pb(static_cast<std::size_t>(m.n_owned));
    std::vector<double> px(static_cast<std::size_t>(m.n_owned));
    la::LinOp pre = [&](std::span<const double> x, std::span<double> y) {
      std::copy(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(m.n_owned),
                pb.begin());
      std::fill(px.begin(), px.end(), 0.0);
      amg.vcycle(comm, pb, px);
      std::copy(px.begin(), px.end(), y.begin());
      m.exchange(comm, y);
    };
    std::vector<double> x = g;
    la::KrylovOptions kopt;
    kopt.rtol = 1e-10;
    const la::SolveResult r =
        la::cg(op.as_linop(comm), b, x, pre, op.as_dot(comm), kopt);

    // 5. Report.
    const std::int64_t ne = comm.allreduce_sum(forest.tree().num_local());
    std::int64_t hanging = 0;
    for (const auto& ec : m.corners)
      for (const auto& cc : ec)
        if (cc.hanging) hanging++;
    hanging = comm.allreduce_sum(hanging);
    double err = 0.0;
    for (std::int64_t i = 0; i < m.n_local; ++i) {
      // The exact solution of this problem is u = x + y (k is constant
      // along it), so the solve must reproduce it.
      const auto& p = m.dof_coords[static_cast<std::size_t>(i)];
      err = std::max(err, std::abs(x[static_cast<std::size_t>(i)] - p[0] - p[1]));
    }
    err = comm.allreduce_max(err);
    if (comm.rank() == 0) {
      std::printf("  elements: %lld (balanced, partitioned)\n",
                  static_cast<long long>(ne));
      std::printf("  dofs: %lld global, %lld hanging element-corners\n",
                  static_cast<long long>(m.n_global),
                  static_cast<long long>(hanging));
      std::printf("  CG converged in %d iterations (relres %.1e)\n",
                  r.iterations, r.relative_residual);
      std::printf("  max error vs exact solution u = x + y: %.2e\n", err);
    }
  });

  const std::string trace = obs::maybe_write_trace("quickstart_trace.json");
  if (!trace.empty())
    std::printf("trace written to %s (open in https://ui.perfetto.dev or "
                "chrome://tracing)\n",
                trace.c_str());
  return 0;
}
