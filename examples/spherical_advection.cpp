// High-order DG advection on the cubed-sphere shell (the paper's Sec. VII
// / Fig. 12 configuration): a thermal front advected by solid-body
// rotation on the 24-tree forest, with dynamic adaptivity following the
// front and SFC repartitioning after every adaptation.
//
// Writes sphere_front_<n>.csv (x,y,z,c columns, element centers) per
// snapshot for plotting.
//
// Run:  ./spherical_advection [order] [cycles] [ranks]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "dg/advect.hpp"
#include "octree/mark.hpp"
#include "octree/partition.hpp"
#include "par/runtime.hpp"

using namespace alps;

int main(int argc, char** argv) {
  const int order = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;
  const int cycles = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;
  const int ranks = argc > 3 ? std::max(1, std::atoi(argv[3])) : 2;
  std::printf("MANGLL-style DG advection on the spherical shell "
              "(order %d, %d adaptation cycles, %d ranks)\n",
              order, cycles, ranks);

  alps::par::run(ranks, [order, cycles](par::Comm& comm) {
    forest::Forest forest = forest::Forest::new_uniform(
        comm, forest::Connectivity::cubed_sphere_shell(), 1);
    const auto geom = dg::shell_geometry(forest.connectivity(), 0.55, 1.0);
    const auto vel = [](const std::array<double, 3>& x, double) {
      return dg::solid_body_rotation(x, 1.0);
    };
    const auto front = [](const std::array<double, 3>& x) {
      const double dx = x[0] - 0.8, dy = x[1], dz = x[2];
      return std::exp(-100.0 * (dx * dx + dy * dy + dz * dz));
    };

    auto solver =
        std::make_unique<dg::DgAdvection>(comm, forest, order, geom, vel);
    std::vector<double> u = solver->interpolate(front);
    const double mass0 = solver->integral(comm, u);
    double t = 0.0;

    if (comm.rank() == 0)
      std::printf("\n%6s %10s %10s %12s %10s\n", "cycle", "time", "elements",
                  "mass-drift", "max(c)");
    for (int cyc = 0; cyc < cycles; ++cyc) {
      const double dt = solver->stable_dt(comm, t);
      for (int s = 0; s < 40; ++s) {
        solver->step(comm, u, t, dt);
        t += dt;
      }
      // Adapt toward the front, balance, move DG payloads, repartition.
      const std::vector<double> eta = solver->indicator(u);
      octree::MarkOptions mopt;
      mopt.target_elements = 600;
      mopt.min_level = 1;
      mopt.max_level = 3;
      const auto flags = octree::mark_elements(comm, forest.tree(), eta, mopt);
      const std::vector<octree::Octant> old_leaves = forest.tree().leaves();
      forest.tree().adapt(flags, 1, 3);
      forest.balance(comm);
      const auto corr =
          octree::compute_correspondence(old_leaves, forest.tree().leaves());
      std::vector<double> u2 = dg::dg_interpolate_element_values(
          order, old_leaves, forest.tree().leaves(), corr, u);
      octree::LeafPayload payload{static_cast<int>(solver->nodes_per_elem()),
                                  std::move(u2)};
      octree::LeafPayload* ps[] = {&payload};
      forest.partition(comm, ps);
      u = std::move(payload.data);
      solver = std::make_unique<dg::DgAdvection>(comm, forest, order, geom, vel);

      const double mass = solver->integral(comm, u);
      double umax = 0;
      for (double v : u) umax = std::max(umax, v);
      umax = comm.allreduce_max(umax);
      const std::int64_t ne = comm.allreduce_sum(forest.tree().num_local());
      if (comm.rank() == 0)
        std::printf("%6d %10.3f %10lld %12.2e %10.3f\n", cyc, t,
                    static_cast<long long>(ne),
                    std::abs(mass - mass0) / std::abs(mass0), umax);

      // Snapshot CSV: element-center value.
      std::vector<double> rows;
      const std::int64_t n3 = solver->nodes_per_elem();
      for (std::int64_t e = 0; e < solver->num_local_elements(); ++e) {
        const auto x = solver->node_xyz(e, n3 / 2);
        double cavg = 0;
        for (std::int64_t k = 0; k < n3; ++k)
          cavg += u[static_cast<std::size_t>(e * n3 + k)];
        rows.insert(rows.end(),
                    {x[0], x[1], x[2], cavg / static_cast<double>(n3)});
      }
      const std::vector<double> all = comm.allgatherv(rows);
      if (comm.rank() == 0) {
        char name[64];
        std::snprintf(name, sizeof name, "sphere_front_%d.csv", cyc);
        std::ofstream out(name);
        out << "x,y,z,c\n";
        for (std::size_t i = 0; i + 3 < all.size(); i += 4)
          out << all[i] << ',' << all[i + 1] << ',' << all[i + 2] << ','
              << all[i + 3] << '\n';
      }
    }
    if (comm.rank() == 0)
      std::printf("\nwrote sphere_front_<n>.csv snapshots; the refined band "
                  "follows the rotating front, as in Fig. 12.\n");
  });
  return 0;
}
