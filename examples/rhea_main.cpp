// rhea_main: config-file-driven mantle convection driver, the production
// entry point a released RHEA would ship. Reads a simple key = value
// config, runs the simulation, reports diagnostics, and optionally dumps
// VTK snapshots for visualization.
//
// Usage:
//   ./rhea_main path/to/config.cfg
//   ./rhea_main --print-default-config > convection.cfg
//
// Config keys (defaults in parentheses):
//   ranks (2)               simulated MPI ranks
//   steps (6)               time steps to run
//   bricks_x/y/z (8/4/1)    domain decomposition in trees
//   init_level (1)          initial uniform refinement
//   min_level/max_level (1/4)
//   target_elements (5000)  MARKELEMENTS target
//   adapt_every (2)
//   rayleigh (1e5)
//   sigma_y (1.0)           yield stress (<= 0 disables yielding: Arrhenius)
//   strain_weight (0.5)     yielding-zone term in the indicator
//   picard_iterations (2)
//   minres_rtol (1e-5)
//   minres_maxit (150)
//   vtk_prefix ()           when set, write <prefix>_<n>.vtk per adaptation
//   sentinels (1)           NaN/Inf field checks after every step
//   nan_inject_step (-1)    test hook: poison the temperature at this step
//   slow_rank (-1)          test hook: artificially delay this rank every
//   slow_rank_us (0)        step by slow_rank_us microseconds, so the
//                           wait-state analyzer must blame it (late sender)
//   mem_drift_window (8)    sliding window (steps) of the memory-drift fit
//   mem_drift_warn_bytes_per_step (1048576)   warn threshold
//   mem_drift_panic_bytes_per_step (0)        flight-recorder threshold
//   mem_drift_inject_rank (-1)  test hook: synthetic linear leak on this
//   mem_drift_inject_bytes (0)  rank, growing by this many bytes per step
//   signal_self_step (-1)   test hook: raise SIGTERM after this step, to
//                           exercise the graceful-shutdown path
//
// Observability: ALPS_TELEMETRY=1 streams one JSONL record per time step
// to ALPS_TELEMETRY_OUT (default alps_telemetry.jsonl). If the sentinels
// trip (or nan_inject_step fires), a flight-recorder bundle is written to
// ALPS_DUMP_DIR and the driver exits with code 3 (after lingering
// ALPS_METRICS_LINGER seconds when the metrics endpoint is up, so an
// external prober can observe the 503). ALPS_METRICS_PORT starts the
// rank-0 live endpoint (obs::serve); the bound port is printed as
// "metrics: serving on port N".
//
// SIGTERM/SIGINT request a graceful shutdown: every rank finishes the
// current step, breaks out of the loop together, the trace ring and
// telemetry tail are flushed, and the driver exits with code 130. A
// second signal hard-exits immediately.

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "io/vtk.hpp"
#include "mesh/fields.hpp"
#include "obs/dump.hpp"
#include "obs/obs.hpp"
#include "obs/serve.hpp"
#include "obs/telemetry.hpp"
#include "par/runtime.hpp"
#include "rhea/simulation.hpp"

using namespace alps;

namespace {

/// Signals received so far. The handler only bumps the counter (async-
/// signal-safe); the step loop polls it at a collective point so every
/// rank breaks together. A second signal hard-exits: the user asked twice.
std::atomic<int> g_signals{0};

void on_signal(int) {
  if (g_signals.fetch_add(1, std::memory_order_relaxed) >= 1) _exit(130);
}

struct Config {
  std::map<std::string, std::string> kv;

  double num(const std::string& key, double def) const {
    auto it = kv.find(key);
    return it == kv.end() ? def : std::stod(it->second);
  }
  int integer(const std::string& key, int def) const {
    return static_cast<int>(num(key, def));
  }
  std::string str(const std::string& key, const std::string& def) const {
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }

  static Config parse(std::istream& in) {
    Config c;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) {
        if (line.find_first_not_of(" \t\r") != std::string::npos)
          throw std::runtime_error("config line " + std::to_string(lineno) +
                                   ": expected key = value");
        continue;
      }
      const auto trim = [](std::string s) {
        const auto b = s.find_first_not_of(" \t\r");
        const auto e = s.find_last_not_of(" \t\r");
        return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
      };
      const std::string key = trim(line.substr(0, eq));
      const std::string val = trim(line.substr(eq + 1));
      if (key.empty() || val.empty())
        throw std::runtime_error("config line " + std::to_string(lineno) +
                                 ": empty key or value");
      c.kv[key] = val;
    }
    return c;
  }
};

constexpr const char* kDefaultConfig = R"(# RHEA mantle convection configuration
ranks = 2
steps = 6
bricks_x = 8
bricks_y = 4
bricks_z = 1
init_level = 1
min_level = 1
max_level = 4
target_elements = 5000
adapt_every = 2
rayleigh = 1e5
sigma_y = 1.0
strain_weight = 0.5
picard_iterations = 2
minres_rtol = 1e-5
minres_maxit = 150
sentinels = 1
# nan_inject_step = -1
# vtk_prefix = rhea_out
)";

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--print-default-config") {
    std::fputs(kDefaultConfig, stdout);
    return 0;
  }
  Config cfg;
  if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "error: cannot open config '%s'\n", argv[1]);
      return 1;
    }
    try {
      cfg = Config::parse(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else if (argc > 2) {
    std::fprintf(stderr, "usage: %s [config.cfg | --print-default-config]\n",
                 argv[0]);
    return 1;
  }

  const int ranks = std::max(1, cfg.integer("ranks", 2));
  const int steps = std::max(1, cfg.integer("steps", 6));
  // Line-buffer stdout even when piped: the metrics scraper and the signal
  // tests read our progress lines from a pipe mid-run.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("RHEA driver: %d ranks, %d steps\n", ranks, steps);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  const int metrics_port = obs::serve_maybe_start();
  if (metrics_port >= 0)
    std::printf("metrics: serving on port %d\n", metrics_port);
  obs::metrics_set_target_steps(steps);

  try {
  alps::par::run(ranks, [&cfg, steps](par::Comm& comm) {
    rhea::SimConfig sim_cfg;
    sim_cfg.conn = forest::Connectivity::brick(cfg.integer("bricks_x", 8),
                                               cfg.integer("bricks_y", 4),
                                               cfg.integer("bricks_z", 1));
    sim_cfg.init_level = cfg.integer("init_level", 1);
    sim_cfg.min_level = cfg.integer("min_level", 1);
    sim_cfg.max_level = cfg.integer("max_level", 4);
    sim_cfg.initial_adapt_rounds = 2;
    sim_cfg.adapt_every = cfg.integer("adapt_every", 2);
    sim_cfg.target_elements = cfg.integer("target_elements", 5000);
    sim_cfg.strain_weight = cfg.num("strain_weight", 0.5);
    sim_cfg.picard.rayleigh = cfg.num("rayleigh", 1e5);
    sim_cfg.picard.max_iterations = cfg.integer("picard_iterations", 2);
    sim_cfg.picard.stokes.krylov.rtol = cfg.num("minres_rtol", 1e-5);
    sim_cfg.picard.stokes.krylov.max_iterations =
        cfg.integer("minres_maxit", 150);
    sim_cfg.sentinels = cfg.integer("sentinels", 1) != 0;
    sim_cfg.nan_inject_step = cfg.integer("nan_inject_step", -1);
    sim_cfg.slow_rank = cfg.integer("slow_rank", -1);
    sim_cfg.slow_rank_us = cfg.integer("slow_rank_us", 0);
    sim_cfg.mem_drift_window = cfg.integer("mem_drift_window", 8);
    sim_cfg.mem_drift_warn_bytes_per_step =
        cfg.num("mem_drift_warn_bytes_per_step", 1 << 20);
    sim_cfg.mem_drift_panic_bytes_per_step =
        cfg.num("mem_drift_panic_bytes_per_step", 0.0);
    sim_cfg.mem_drift_inject_rank = cfg.integer("mem_drift_inject_rank", -1);
    sim_cfg.mem_drift_inject_bytes = static_cast<std::int64_t>(
        cfg.num("mem_drift_inject_bytes", 0));
    const double sigma_y = cfg.num("sigma_y", 1.0);
    if (sigma_y > 0) {
      rhea::YieldingLawOptions yopt;
      yopt.sigma_y = sigma_y;
      sim_cfg.law = rhea::three_layer_yielding(yopt);
    } else {
      sim_cfg.law = rhea::arrhenius(1.0, 6.9);
    }

    rhea::Simulation sim(comm, sim_cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      const double conductive = 1.0 - p[2];
      const double pert = 0.08 * std::cos(M_PI * p[0] / 4.0) *
                          std::cos(M_PI * p[1] / 2.0) * std::sin(M_PI * p[2]);
      return std::clamp(conductive + pert, 0.0, 1.0);
    });

    const std::string vtk_prefix = cfg.str("vtk_prefix", "");
    const int signal_self_step = cfg.integer("signal_self_step", -1);
    int snapshot = 0;
    if (comm.rank() == 0)
      std::printf("\n%6s %10s %10s %12s\n", "step", "time", "elements",
                  "v_rms");
    for (int s = 0; s < steps; ++s) {
      // Graceful shutdown: the handler set a process-global flag; the
      // allreduce makes the break collective so no rank is left waiting
      // inside a later collective.
      if (comm.allreduce_or(g_signals.load(std::memory_order_relaxed) > 0))
        break;
      const std::size_t adapts_before = sim.adapt_history().size();
      sim.run(1);
      if (s + 1 == signal_self_step && comm.rank() == 0)
        std::raise(SIGTERM);
      double v2 = 0, n = 0;
      for (std::int64_t d = 0; d < sim.mesh().n_owned; ++d) {
        for (int c = 0; c < 3; ++c) {
          const double v = sim.solution()[static_cast<std::size_t>(d * 4 + c)];
          v2 += v * v;
        }
        n += 1;
      }
      v2 = comm.allreduce_sum(v2);
      n = comm.allreduce_sum(n);
      const std::int64_t ne = sim.global_elements();
      if (comm.rank() == 0)
        std::printf("%6d %10.2e %10lld %12.3e\n", s + 1, sim.time(),
                    static_cast<long long>(ne), std::sqrt(v2 / n));
      if (!vtk_prefix.empty() &&
          sim.adapt_history().size() > adapts_before) {
        io::VtkField field{
            "T", mesh::to_element_values(sim.mesh(), sim.temperature())};
        const std::string path =
            vtk_prefix + "_" + std::to_string(snapshot++) + ".vtk";
        io::write_vtk(comm, sim.forest().connectivity(), sim.mesh(), path,
                      {field});
        if (comm.rank() == 0) std::printf("  wrote %s\n", path.c_str());
      }
    }
    const auto& t = sim.timers();
    const double solve = t.minres + t.amg_setup + t.amg_apply +
                         t.stokes_assemble + t.time_integration;
    if (comm.rank() == 0)
      std::printf("\ntimers: solve %.2fs, AMR %.3fs (%.2f%% of solve)\n",
                  solve, t.amr_total(), 100.0 * t.amr_total() / solve);
  });
  } catch (const rhea::SentinelError& e) {
    // The flight-recorder bundle was written before the throw; report the
    // structured failure and exit distinctly so CI can assert on it. The
    // simulation marked the endpoint unhealthy before throwing — keep
    // serving the 503 briefly so an external prober can observe it.
    std::fprintf(stderr, "rhea: SENTINEL TRIP: %s\n", e.what());
    std::fprintf(stderr, "rhea: flight-recorder bundle in %s\n",
                 obs::dump_dir().c_str());
    obs::metrics_linger_if_unhealthy();
    obs::serve_stop();
    return 3;
  }

  // With ALPS_TRACE set, dump the per-rank span timeline of the run.
  const std::string trace = obs::maybe_write_trace("rhea_trace.json");
  if (!trace.empty())
    std::printf("trace written to %s (open in https://ui.perfetto.dev or "
                "chrome://tracing)\n",
                trace.c_str());
  if (obs::telemetry_enabled())
    std::printf("telemetry: %llu records in %s\n",
                static_cast<unsigned long long>(obs::telemetry_records()),
                obs::telemetry_path().c_str());
  obs::serve_stop();
  if (g_signals.load(std::memory_order_relaxed) > 0) {
    // The trace and telemetry flushes above already ran — the JSONL file
    // holds every completed step and the trace (when ALPS_TRACE is set)
    // covers the truncated run. 130 = terminated by signal, softly.
    std::fprintf(stderr, "rhea: interrupted, shut down cleanly\n");
    return 130;
  }
  return 0;
}
