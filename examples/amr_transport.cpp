// Dynamic AMR tracking a transported front (the paper's Sec. V test
// problem): high-Peclet advection-diffusion with SUPG, adaptation every
// few steps, the element count held near a target by MARKELEMENTS, and
// the refined region following the front through the domain.
//
// Run:  ./amr_transport [steps] [ranks]

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "octree/balance.hpp"
#include "par/runtime.hpp"
#include "rhea/simulation.hpp"

using namespace alps;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 24;
  const int ranks = argc > 2 ? std::max(1, std::atoi(argv[2])) : 2;
  std::printf("AMR transport test (%d steps, %d ranks): rotating thermal "
              "front, adaptation every 4 steps\n",
              steps, ranks);

  alps::par::run(ranks, [steps](par::Comm& comm) {
    rhea::SimConfig cfg;
    cfg.init_level = 4;
    cfg.min_level = 2;
    cfg.max_level = 6;
    cfg.initial_adapt_rounds = 2;
    cfg.adapt_every = 4;
    cfg.target_elements = 6000;
    cfg.energy.kappa = 1e-6;  // high Peclet number, as in the paper
    cfg.energy.dirichlet_faces = 0b111111;
    cfg.prescribed_velocity = [](const std::array<double, 3>& p, double) {
      return std::array<double, 3>{-(p[1] - 0.5), (p[0] - 0.5), 0.0};
    };
    rhea::Simulation sim(comm, cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      const double dx = p[0] - 0.75, dy = p[1] - 0.5, dz = p[2] - 0.5;
      return std::exp(-100.0 * (dx * dx + dy * dy + dz * dz));
    });

    if (comm.rank() == 0)
      std::printf("\n%6s %10s %10s %8s %10s %10s\n", "step", "time",
                  "elements", "levels", "T_max", "front(x,y)");
    for (int s = 0; s < steps; ++s) {
      sim.run(1);
      int lmin = 99, lmax = 0;
      for (const auto& o : sim.forest().tree().leaves()) {
        lmin = std::min(lmin, static_cast<int>(o.level));
        lmax = std::max(lmax, static_cast<int>(o.level));
      }
      lmin = comm.allreduce_min(lmin);
      lmax = comm.allreduce_max(lmax);
      // Track the front: temperature-weighted center of mass.
      double cx = 0, cy = 0, mass = 0, tmax = 0;
      for (std::int64_t d = 0; d < sim.mesh().n_owned; ++d) {
        const double tv = sim.temperature()[static_cast<std::size_t>(d)];
        const auto& p = sim.mesh().dof_coords[static_cast<std::size_t>(d)];
        cx += tv * p[0];
        cy += tv * p[1];
        mass += tv;
        tmax = std::max(tmax, tv);
      }
      cx = comm.allreduce_sum(cx);
      cy = comm.allreduce_sum(cy);
      mass = comm.allreduce_sum(mass);
      tmax = comm.allreduce_max(tmax);
      const std::int64_t ne = sim.global_elements();
      if (comm.rank() == 0 && (s % 4 == 3 || s == 0))
        std::printf("%6d %10.3f %10lld %5d-%-2d %10.3f (%.2f,%.2f)\n", s + 1,
                    sim.time(), static_cast<long long>(ne), lmin, lmax, tmax,
                    cx / mass, cy / mass);
    }
    const bool balanced = sim.forest().is_balanced(comm);
    if (comm.rank() == 0) {
      std::printf("\nadaptation steps: %zu, mesh balanced: %s\n",
                  sim.adapt_history().size(), balanced ? "yes" : "NO");
      const auto& t = sim.timers();
      const double denom = t.time_integration + t.amr_total();
      std::printf("time split: integration %.2fs, AMR total %.2fs (%.1f%%)\n",
                  t.time_integration, t.amr_total(),
                  denom > 0 ? 100.0 * t.amr_total() / denom : 0.0);
    }
  });
  return 0;
}
