// Regional mantle convection with plastic yielding (the paper's Sec. VI
// simulation, scaled to a workstation): 8x4x1 Cartesian domain, three-
// layer temperature-dependent viscosity with stress yielding in the
// lithosphere, nonlinear Stokes solves with Picard iteration, SUPG energy
// transport, and dynamic AMR tracking plumes and yielding zones.
//
// Writes a CSV of a vertical temperature slice each adaptation cycle
// (mantle_slice_<n>.csv: x,z,T,eta columns) for plotting.
//
// Run:  ./mantle_convection [steps] [ranks]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "mesh/fields.hpp"
#include "par/runtime.hpp"
#include "rhea/simulation.hpp"
#include "stokes/picard.hpp"

using namespace alps;

namespace {

void write_slice(par::Comm& comm, const rhea::Simulation& sim,
                 const rhea::YieldingLawOptions& yopt, int snapshot) {
  // Sample T and eta at element centers near the y = 1 plane.
  const auto& m = sim.mesh();
  const auto& conn = sim.forest().connectivity();
  const std::vector<double> eta = stokes::evaluate_viscosity(
      m, conn, rhea::three_layer_yielding(yopt), sim.temperature(),
      sim.solution());
  std::vector<double> rows;  // x, z, T, eta per sampled element
  const std::vector<double> ev = mesh::to_element_values(m, sim.temperature());
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const auto& o = m.elements[e];
    const auto h = octree::octant_len(o.level);
    const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
    if (std::abs(p[1] - 1.0) > 0.25) continue;
    double tc = 0.0;
    for (int k = 0; k < 8; ++k) tc += ev[8 * e + static_cast<std::size_t>(k)] / 8.0;
    rows.insert(rows.end(), {p[0], p[2], tc, eta[8 * e]});
  }
  const std::vector<double> all = comm.allgatherv(rows);
  if (comm.rank() == 0) {
    char name[64];
    std::snprintf(name, sizeof name, "mantle_slice_%d.csv", snapshot);
    std::ofstream out(name);
    out << "x,z,T,eta\n";
    for (std::size_t i = 0; i + 3 < all.size(); i += 4)
      out << all[i] << ',' << all[i + 1] << ',' << all[i + 2] << ','
          << all[i + 3] << '\n';
    std::printf("  wrote %s (%zu elements sampled)\n", name, all.size() / 4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 6;
  const int ranks = argc > 2 ? std::max(1, std::atoi(argv[2])) : 2;
  std::printf("RHEA regional mantle convection with yielding (%d steps, %d "
              "ranks)\n",
              steps, ranks);

  alps::par::run(ranks, [steps](par::Comm& comm) {
    rhea::YieldingLawOptions yopt;
    yopt.sigma_y = 1.0;
    yopt.eta_min = 1e-4;
    yopt.eta_max = 1e4;

    rhea::SimConfig cfg;
    cfg.conn = forest::Connectivity::brick(8, 4, 1);
    cfg.init_level = 1;
    cfg.min_level = 1;
    cfg.max_level = 4;
    cfg.initial_adapt_rounds = 2;
    cfg.adapt_every = 2;
    cfg.target_elements = 5000;
    cfg.strain_weight = 0.5;
    cfg.law = rhea::three_layer_yielding(yopt);
    cfg.picard.rayleigh = 1e5;
    cfg.picard.max_iterations = 2;
    cfg.picard.stokes.krylov.max_iterations = 150;
    cfg.picard.stokes.krylov.rtol = 1e-5;

    rhea::Simulation sim(comm, cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      const double conductive = 1.0 - p[2];
      const double pert = 0.08 * std::cos(M_PI * p[0] / 4.0) *
                              std::cos(M_PI * p[1] / 2.0) *
                              std::sin(M_PI * p[2]) +
                          0.03 * std::cos(M_PI * p[0]) * std::sin(M_PI * p[2]);
      return std::clamp(conductive + pert, 0.0, 1.0);
    });

    if (comm.rank() == 0)
      std::printf("\n%6s %10s %10s %12s %10s\n", "step", "time", "elements",
                  "v_rms", "T_mean");
    for (int s = 0; s < steps; ++s) {
      sim.run(1);
      // Diagnostics: rms velocity and mean temperature over owned dofs.
      double v2 = 0, tsum = 0, n = 0;
      for (std::int64_t d = 0; d < sim.mesh().n_owned; ++d) {
        for (int c = 0; c < 3; ++c) {
          const double v =
              sim.solution()[static_cast<std::size_t>(d * 4 + c)];
          v2 += v * v;
        }
        tsum += sim.temperature()[static_cast<std::size_t>(d)];
        n += 1;
      }
      v2 = comm.allreduce_sum(v2);
      tsum = comm.allreduce_sum(tsum);
      n = comm.allreduce_sum(n);
      const std::int64_t ne = sim.global_elements();
      if (comm.rank() == 0)
        std::printf("%6d %10.2e %10lld %12.3e %10.4f\n", s + 1, sim.time(),
                    static_cast<long long>(ne), std::sqrt(v2 / n), tsum / n);
      if ((s + 1) % 2 == 0) write_slice(comm, sim, yopt, (s + 1) / 2);
    }

    // Final summary (the Fig. 11 numbers, scaled).
    int finest = 0;
    for (const auto& o : sim.forest().tree().leaves())
      finest = std::max(finest, static_cast<int>(o.level));
    finest = comm.allreduce_max(finest);
    const std::int64_t ne = sim.global_elements();
    if (comm.rank() == 0) {
      const double uniform = 32.0 * std::pow(8.0, finest);
      std::printf("\nAMR summary: %lld elements; uniform level-%d mesh would "
                  "need %.3g (%.0fx reduction)\n",
                  static_cast<long long>(ne), finest, uniform,
                  uniform / static_cast<double>(ne));
      std::printf("finest resolution: %.0f km (domain is 23,200 km across)\n",
                  23200.0 / 8.0 / std::pow(2.0, finest));
    }
  });
  return 0;
}
