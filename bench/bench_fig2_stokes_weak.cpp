// Fig. 2 (table): weak scalability of the variable-viscosity Stokes
// solver — MINRES iteration counts stay essentially flat as problem size
// grows, despite severe viscosity heterogeneity.
//
// The paper runs 67.2K -> 539M elements on 1 -> 8192 Ranger cores. Here
// the same solver chain (MINRES + block preconditioner with one
// distributed AMG V-cycle per velocity component) runs on a host-sized
// sweep of adapted meshes with the rank count growing alongside the
// problem, exercising the owned-row distributed path; the "cores" column
// reports the paper's equivalent core count at its ~65K elements/core
// granularity. Results are emitted to BENCH_stokes.json.

#include <cmath>

#include "bench_common.hpp"
#include "fem/operators.hpp"
#include "stokes/stokes.hpp"

using namespace alps;

namespace {

double temp_field(const std::array<double, 3>& p) {
  const double dx = p[0] - 0.5, dy = p[1] - 0.5, dz = p[2] - 0.3;
  return std::exp(-30.0 * (dx * dx + dy * dy + dz * dz)) +
         0.5 * std::exp(-40.0 * ((p[0] - 0.2) * (p[0] - 0.2) + dy * dy +
                                 (p[2] - 0.7) * (p[2] - 0.7)));
}

}  // namespace

int main() {
  bench::header("Weak scalability of the variable-viscosity Stokes solver",
                "Fig. 2 (paper: 57/47/51/60/67/68 MINRES iterations from "
                "271K to 2.17B dof)");
  bench::note(
      "Viscosity = temperature-dependent exp(-ln(1e5) T): 5 decades of "
      "contrast, as in the paper's mantle runs.");

  bench::Reporter report("fig2_stokes_weak");
  bench::JsonWriter& json = report.json();
  json.arr_open("cases");

  std::printf("%6s %10s %10s %12s %10s %8s %10s %14s\n", "ranks", "cores(eq)",
              "#elem", "#elem/rank", "#dof", "MINRES", "relres",
              "perrank-nnz");
  for (int level : {2, 3, 4, 5}) {
    // Grow the rank count with the mesh: 1, 2, 4, 4 — a host-sized weak
    // scaling sweep over the distributed solver stack.
    const int p = std::min(4, 1 << (level - 2));
    struct Row {
      std::int64_t ne = 0, ndof = 0, peak_nnz = 0;
      int iters = 0;
      double relres = 0;
      stokes::StokesTimings t;
    } row;
    const par::CommStats cs = alps::par::run(p, [level, &row](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      // Adapt once toward the thermal anomaly for a realistic mesh.
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.3}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      const std::vector<double> t = fem::interpolate(m, temp_field);
      // eta(T) = exp(-ln(1e5) T): 1 .. 1e-5.
      std::vector<double> eta(m.elements.size() * 8);
      for (std::size_t e = 0; e < m.elements.size(); ++e) {
        const auto xyz = m.element_corners_xyz(f.connectivity(),
                                               static_cast<std::int64_t>(e));
        for (int q = 0; q < 8; ++q) {
          const double tv = temp_field(xyz[static_cast<std::size_t>(q)]);
          eta[8 * e + static_cast<std::size_t>(q)] =
              std::exp(-std::log(1e5) * tv);
        }
      }
      stokes::StokesOptions opt;
      opt.krylov.rtol = 1e-6;
      opt.krylov.max_iterations = 300;
      stokes::StokesSolver solver(c, m, f.connectivity(), eta, opt);
      const std::vector<double> rhs = stokes::StokesSolver::buoyancy_rhs(
          c, m, f.connectivity(), t, 1e5, 2, opt);
      std::vector<double> x(rhs.size(), 0.0);
      const la::SolveResult r = solver.solve(c, rhs, x);
      const std::int64_t ne = c.allreduce_sum(f.tree().num_local());
      const std::int64_t peak = c.allreduce_max(solver.local_amg_nnz());
      if (c.rank() == 0) {
        row.ne = ne;
        row.ndof = m.n_global * 4;
        row.peak_nnz = peak;
        row.iters = r.iterations;
        row.relres = r.relative_residual;
        row.t = solver.timings();
      }
    });
    const double cores_eq = static_cast<double>(row.ne) / 65000.0;
    std::printf("%6d %10.3f %10lld %12lld %10lld %8d %10.2e %14lld\n", p,
                cores_eq, static_cast<long long>(row.ne),
                static_cast<long long>(row.ne / p),
                static_cast<long long>(row.ndof), row.iters, row.relres,
                static_cast<long long>(row.peak_nnz));
    json.obj_open()
        .field("level", level)
        .field("ranks", p)
        .field("cores_equivalent", cores_eq)
        .field("n_elements", row.ne)
        .field("n_dof", row.ndof)
        .field("minres_iterations", row.iters)
        .field("relative_residual", row.relres)
        .field("per_rank_peak_amg_nnz", row.peak_nnz)
        .obj_open("timings_s")
        .field("assemble", row.t.assemble_seconds)
        .field("amg_setup", row.t.amg_setup_seconds)
        .field("amg_apply", row.t.amg_apply_seconds)
        .field("minres", row.t.minres_seconds)
        .obj_close();
    bench::json_comm_stats(json, cs);
    json.obj_close();
    report.snapshot_obs("level" + std::to_string(level) + "_p" +
                        std::to_string(p));
  }

  json.arr_close();
  report.save("BENCH_stokes.json");

  std::printf(
      "\nPaper reference (Fig. 2):\n"
      "     cores      #elem   #elem/core       #dof  MINRES\n"
      "         1      67.2K        67.2K       271K      57\n"
      "         8       514K        64.2K      2.06M      47\n"
      "        64      4.20M        65.7K      16.8M      51\n"
      "       512      33.2M        64.9K       133M      60\n"
      "      4096       267M        65.3K      1.07B      67\n"
      "      8192       539M        65.9K      2.17B      68\n"
      "Shape check: iteration counts stay in a narrow band as the problem "
      "grows;\nthe absolute level depends on the AMG variant and "
      "tolerance.\n");
  return 0;
}
