// Fig. 2 (table): weak scalability of the variable-viscosity Stokes
// solver — MINRES iteration counts stay essentially flat as problem size
// grows, despite severe viscosity heterogeneity.
//
// The paper runs 67.2K -> 539M elements on 1 -> 8192 Ranger cores. Here
// the same solver chain (MINRES + block preconditioner with one
// BoomerAMG-substitute V-cycle per velocity component) runs on a
// host-sized sweep of adapted meshes; the "cores" column reports the
// paper's equivalent core count at its ~65K elements/core granularity.

#include <cmath>

#include "bench_common.hpp"
#include "fem/operators.hpp"
#include "stokes/stokes.hpp"

using namespace alps;

namespace {

double temp_field(const std::array<double, 3>& p) {
  const double dx = p[0] - 0.5, dy = p[1] - 0.5, dz = p[2] - 0.3;
  return std::exp(-30.0 * (dx * dx + dy * dy + dz * dz)) +
         0.5 * std::exp(-40.0 * ((p[0] - 0.2) * (p[0] - 0.2) + dy * dy +
                                 (p[2] - 0.7) * (p[2] - 0.7)));
}

}  // namespace

int main() {
  bench::header("Weak scalability of the variable-viscosity Stokes solver",
                "Fig. 2 (paper: 57/47/51/60/67/68 MINRES iterations from "
                "271K to 2.17B dof)");
  bench::note(
      "Viscosity = temperature-dependent exp(-ln(1e5) T): 5 decades of "
      "contrast, as in the paper's mantle runs.");

  std::printf("%10s %10s %12s %10s %8s %10s\n", "cores(eq)", "#elem",
              "#elem/core", "#dof", "MINRES", "relres");
  for (int level : {2, 3, 4, 5}) {
    alps::par::run(1, [level](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      // Adapt once toward the thermal anomaly for a realistic mesh.
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.3}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      const std::vector<double> t = fem::interpolate(m, temp_field);
      // eta(T) = exp(-ln(1e5) T): 1 .. 1e-5.
      std::vector<double> eta(m.elements.size() * 8);
      for (std::size_t e = 0; e < m.elements.size(); ++e) {
        const auto xyz = m.element_corners_xyz(f.connectivity(),
                                               static_cast<std::int64_t>(e));
        for (int q = 0; q < 8; ++q) {
          const double tv = temp_field(xyz[static_cast<std::size_t>(q)]);
          eta[8 * e + static_cast<std::size_t>(q)] =
              std::exp(-std::log(1e5) * tv);
        }
      }
      stokes::StokesOptions opt;
      opt.krylov.rtol = 1e-6;
      opt.krylov.max_iterations = 300;
      stokes::StokesSolver solver(c, m, f.connectivity(), eta, opt);
      const std::vector<double> rhs = stokes::StokesSolver::buoyancy_rhs(
          c, m, f.connectivity(), t, 1e5, 2, opt);
      std::vector<double> x(rhs.size(), 0.0);
      const la::SolveResult r = solver.solve(c, rhs, x);
      const std::int64_t ne = c.allreduce_sum(f.tree().num_local());
      const double cores_eq = static_cast<double>(ne) / 65000.0;
      std::printf("%10.3f %10lld %12lld %10lld %8d %10.2e\n", cores_eq,
                  static_cast<long long>(ne), static_cast<long long>(ne),
                  static_cast<long long>(m.n_global * 4),
                  r.iterations, r.relative_residual);
    });
  }
  std::printf(
      "\nPaper reference (Fig. 2):\n"
      "     cores      #elem   #elem/core       #dof  MINRES\n"
      "         1      67.2K        67.2K       271K      57\n"
      "         8       514K        64.2K      2.06M      47\n"
      "        64      4.20M        65.7K      16.8M      51\n"
      "       512      33.2M        64.9K       133M      60\n"
      "      4096       267M        65.3K      1.07B      67\n"
      "      8192       539M        65.9K      2.17B      68\n"
      "Shape check: iteration counts stay in a narrow band as the problem "
      "grows;\nthe absolute level depends on the AMG variant and "
      "tolerance.\n");
  return 0;
}
