// Fig. 6: fixed-size (strong) scalability of the advection-diffusion AMR
// solver for four problem sizes (1.99M, 32.7M, 531M, 2.24B elements),
// over 1 -> 65,536 cores.
//
// Host substitution (DESIGN.md): per-element compute rates are measured
// from a real run of this repository's pipeline; communication is modeled
// with Ranger-era latency/bandwidth parameters applied to the counted
// message pattern of the SFC-partitioned algorithms. The shape — near-
// ideal speedup until elements/core gets small — is the reproduction
// target.

#include <cmath>

#include "bench_common.hpp"
#include "perf/model.hpp"

using namespace alps;

namespace {

// Modeled per-step time at P cores for an N-element problem whose base
// run used one core per node (the paper's setup: contention ramps in
// over the first four doublings).
double step_time(const perf::MachineModel& m, const bench::AmrRates& r,
                 double n, std::int64_t p, std::int64_t base_cores,
                 int adapt_every) {
  const double npc = n / static_cast<double>(p);
  const double cf = perf::contention_factor(m, p, base_cores);
  // Time integration: 2 RK stages, each a ghost exchange (trilinear face
  // data, ~8 bytes/face node, 4 values) + 1 dt allreduce per step.
  perf::PhaseCost ti{"ti",
                     perf::to_model_seconds(m, r.time_integration) * n * cf,
                     1, 8, 12, perf::ghost_bytes_per_rank(
                                   static_cast<std::int64_t>(npc), 32.0)};
  double t = perf::phase_time(m, ti, p);
  // Amortized adaptation cost (every adapt_every steps).
  const double amr_work = perf::to_model_seconds(
      m, r.mark + r.coarsen_refine + r.balance + r.interpolate + r.partition +
             r.extract) * n * cf;
  perf::PhaseCost amr{"amr", amr_work,
                      50 /* MarkElements threshold rounds + balance */, 16,
                      40, npc * 8.0 * 8.0 * 0.5 /* half the mesh moves */};
  t += perf::phase_time(m, amr, p) / adapt_every;
  return t;
}

}  // namespace

int main() {
  bench::header("Fixed-size (strong) scaling of advection-diffusion AMR",
                "Fig. 6 (paper: speedup 366@512 for 1.99M; 52x@1024/16 for "
                "32.7M; 101x@32768/256 for 531M; 11.5x@61440/4096 for 2.24B)");
  const perf::MachineModel machine = perf::MachineModel::ranger();
  bench::note("Machine model: " + machine.name);
  std::printf(
      "Calibrating per-element rates from a real host run (level-4 AMR "
      "advection)...\n");
  const bench::AmrRates rates = bench::calibrate_advection_rates(5, 16, 8);
  std::printf("  measured: %.3e s/elem/step integration, %.3e s/elem/adapt "
              "AMR total\n",
              rates.time_integration,
              rates.mark + rates.coarsen_refine + rates.balance +
                  rates.interpolate + rates.partition + rates.extract);

  const struct {
    const char* name;
    double n;
    int base_cores;
  } problems[] = {{"1.99M", 1.99e6, 1},
                  {"32.7M", 3.27e7, 16},
                  {"531M", 5.31e8, 256},
                  {"2.24B", 2.24e9, 4096}};

  std::printf("\n%8s", "cores");
  for (const auto& pr : problems) std::printf(" %12s", pr.name);
  std::printf("   (speedup relative to each problem's base core count)\n");
  for (std::int64_t p = 1; p <= 65536; p *= 2) {
    std::printf("%8lld", static_cast<long long>(p));
    for (const auto& pr : problems) {
      if (p < pr.base_cores || pr.n / static_cast<double>(p) < 1000.0) {
        std::printf(" %12s", "-");
        continue;
      }
      const double t_base =
          step_time(machine, rates, pr.n, pr.base_cores, pr.base_cores, 32);
      const double t_p = step_time(machine, rates, pr.n, p, pr.base_cores, 32);
      std::printf(" %12.1f", t_base / t_p);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check vs paper: near-ideal speedup while elements/core "
      "stays large,\nrolling off as communication latency dominates at "
      "small per-core work —\nthe same crossover structure as Fig. 6.\n");
  return 0;
}
