// Fig. 5: extent of mesh adaptation in an advection-driven AMR run.
// Left panel: elements refined / coarsened / added by BalanceTree /
// unchanged at each adaptation step, with MARKELEMENTS holding the total
// roughly constant. Right panel: element counts per octree level at
// selected steps, spreading across many live levels.

#include <cmath>

#include "bench_common.hpp"
#include "rhea/simulation.hpp"

using namespace alps;

int main() {
  bench::header("Extent of mesh adaptation (advection-driven AMR)",
                "Fig. 5 (paper: ~half of all elements touched per step; "
                "10 live octree levels by step 8)");

  alps::par::run(2, [](par::Comm& c) {
    rhea::SimConfig cfg;
    cfg.init_level = 4;
    cfg.min_level = 2;
    cfg.max_level = 7;
    cfg.initial_adapt_rounds = 2;
    cfg.adapt_every = 4;
    cfg.target_elements = 5000;  // MARKELEMENTS holds the count here
    cfg.energy.kappa = 1e-6;
    cfg.energy.dirichlet_faces = 0b111111;
    // A rotating velocity field keeps fronts moving through the domain,
    // forcing aggressive refinement AND coarsening, as in the paper.
    cfg.prescribed_velocity = [](const std::array<double, 3>& p, double) {
      return std::array<double, 3>{-(p[1] - 0.5), (p[0] - 0.5), 0.0};
    };
    rhea::Simulation sim(c, cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      const double dx = p[0] - 0.7, dy = p[1] - 0.5, dz = p[2] - 0.5;
      return std::exp(-80.0 * (dx * dx + dy * dy + dz * dz));
    });
    const std::int64_t n0 = sim.global_elements();
    sim.run(40);  // ~10 adaptation steps

    if (c.rank() == 0) {
      std::printf("target element count: 5000 (initial mesh: %lld)\n\n",
                  static_cast<long long>(n0));
      std::printf("%6s %10s %10s %12s %10s %10s %8s\n", "step", "refined",
                  "coarsened", "balance-add", "unchanged", "total",
                  "touched");
      int step = 1;
      for (const auto& st : sim.adapt_history()) {
        const double touched =
            100.0 * static_cast<double>(st.refined + st.coarsened) /
            static_cast<double>(st.refined + st.coarsened + st.unchanged);
        std::printf("%6d %10lld %10lld %12lld %10lld %10lld %7.1f%%\n", step++,
                    static_cast<long long>(st.refined),
                    static_cast<long long>(st.coarsened),
                    static_cast<long long>(st.balance_added),
                    static_cast<long long>(st.unchanged),
                    static_cast<long long>(st.total_elements), touched);
      }

      std::printf("\nElements per octree level (selected adaptation steps):\n");
      std::printf("%6s", "level");
      const auto& hist = sim.adapt_history();
      std::vector<std::size_t> sel;
      for (std::size_t k = 0; k < hist.size(); k += 2) sel.push_back(k);
      for (std::size_t k : sel) std::printf(" %10s", ("step" + std::to_string(k + 1)).c_str());
      std::printf("\n");
      for (int l = 0; l < 10; ++l) {
        bool any = false;
        for (std::size_t k : sel)
          if (hist[k].per_level[static_cast<std::size_t>(l)] > 0) any = true;
        if (!any) continue;
        std::printf("%6d", l);
        for (std::size_t k : sel)
          std::printf(" %10lld", static_cast<long long>(
                                     hist[k].per_level[static_cast<std::size_t>(l)]));
        std::printf("\n");
      }
      int live_levels = 0;
      for (int l = 0; l < 20; ++l)
        if (hist.back().per_level[static_cast<std::size_t>(l)] > 0) live_levels++;
      std::printf(
          "\nShape check vs paper: a large fraction of elements is "
          "refined or\ncoarsened each step (paper: ~50%%), BalanceTree "
          "additions are a small\nfraction, the total stays near the "
          "target, and %d octree levels are live\n(paper: 10 by step 8 at "
          "much larger scale).\n",
          live_levels);
    }
  });
  return 0;
}
