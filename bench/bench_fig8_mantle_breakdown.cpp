// Fig. 8: isogranular scaling of the full mantle convection code at
// ~50,000 elements/core: runtime per time step broken into AMG setup,
// AMG V-cycles, MINRES iterations (element matvecs + inner products),
// explicit time integration, and the (negligible) AMR functions.
// Paper: the Stokes solve is >95% of runtime; AMR + explicit transport +
// MINRES scale nearly ideally while AMG setup/V-cycle times grow.

#include <cmath>

#include "bench_common.hpp"
#include "perf/model.hpp"
#include "rhea/simulation.hpp"

using namespace alps;

int main() {
  bench::header("Full mantle convection runtime breakdown per time step",
                "Fig. 8 (paper: Stokes solve > 95% of runtime; AMR "
                "negligible; AMG setup/V-cycle grow with core count)");
  const perf::MachineModel m = perf::MachineModel::ranger();
  bench::note("Machine model: " + m.name);

  // Real host calibration: a small convection run with one adaptation.
  rhea::PhaseTimers timers;
  long long elements = 0;
  int steps_taken = 0;
  alps::par::run(1, [&](par::Comm& c) {
    rhea::SimConfig cfg;
    cfg.init_level = 3;
    cfg.min_level = 2;
    cfg.max_level = 5;
    cfg.initial_adapt_rounds = 1;
    cfg.adapt_every = 4;
    cfg.picard.rayleigh = 1e5;
    cfg.picard.max_iterations = 2;
    cfg.picard.stokes.krylov.max_iterations = 200;
    cfg.picard.stokes.krylov.rtol = 1e-6;
    rhea::YieldingLawOptions yopt;
    yopt.sigma_y = 2.0;
    cfg.law = rhea::three_layer_yielding(yopt);
    rhea::Simulation sim(c, cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      return (1.0 - p[2]) +
             0.1 * std::cos(M_PI * p[0]) * std::sin(M_PI * p[2]);
    });
    sim.run(8);
    timers = sim.timers();
    elements = sim.global_elements();
    steps_taken = sim.steps_taken();
  });

  const double steps = steps_taken;
  std::printf("\nMeasured host breakdown (%lld elements, %d steps):\n",
              elements, steps_taken);
  std::printf("  %-22s %10.4f s/step\n", "AMG setup",
              timers.amg_setup / steps);
  std::printf("  %-22s %10.4f s/step\n", "AMG V-cycles",
              timers.amg_apply / steps);
  std::printf("  %-22s %10.4f s/step\n", "MINRES (matvec etc.)",
              timers.minres / steps);
  std::printf("  %-22s %10.4f s/step\n", "Stokes assembly",
              timers.stokes_assemble / steps);
  std::printf("  %-22s %10.4f s/step\n", "TimeIntegration",
              timers.time_integration / steps);
  std::printf("  %-22s %10.4f s/step\n", "all AMR functions",
              timers.amr_total() / steps);
  const double stokes = timers.amg_setup + timers.amg_apply + timers.minres +
                        timers.stokes_assemble;
  std::printf("  Stokes share of total: %.1f%% (paper: > 95%%)\n",
              100.0 * stokes / (stokes + timers.time_integration +
                                timers.amr_total()));

  // Isogranular synthesis at 50K elements/core.
  const double npc = 50000.0;
  const double ne = static_cast<double>(elements);
  const auto per_elem = [&](double t) {
    return perf::to_model_seconds(m, t / steps / ne);
  };
  std::printf("\nModeled isogranular scaling (50K elem/core), seconds per "
              "time step:\n");
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "cores", "AMGsetup",
              "AMGvcycle", "MINRES", "TimeInt", "AMR", "total");
  for (std::int64_t p = 1; p <= 16384; p *= 4) {
    const double n = npc * static_cast<double>(p);
    const double levels = std::max(1.0, std::log(n / 64.0) / std::log(8.0));
    const double ghost = perf::ghost_bytes_per_rank(
        static_cast<std::int64_t>(npc), 32.0);
    // MINRES: ~60 iterations; each = 1 matvec ghost exchange + 2 dots.
    perf::PhaseCost minres{"minres", per_elem(timers.minres) * n, 120, 8,
                           60 * 12, 60.0 * ghost};
    // One V-cycle per MINRES iteration and component: every level does a
    // neighbor exchange; coarse levels are latency-bound.
    perf::PhaseCost vcyc{"vcycle", per_elem(timers.amg_apply) * n,
                         static_cast<std::int64_t>(180 * levels), 8,
                         static_cast<std::int64_t>(180 * levels * 2),
                         180.0 * ghost * 1.5};
    // Setup (amortized per step; one setup per 16 steps in the paper):
    // coarsening handshakes are communication-heavy.
    perf::PhaseCost setup{"setup", per_elem(timers.amg_setup) * n,
                          static_cast<std::int64_t>(8 * levels * levels), 64,
                          static_cast<std::int64_t>(8 * levels * 4),
                          8.0 * ghost * 2.0};
    perf::PhaseCost ti{"ti", per_elem(timers.time_integration) * n, 1, 8, 12,
                       ghost};
    perf::PhaseCost amr{"amr", per_elem(timers.amr_total()) * n, 4, 16, 8,
                        npc * 16.0};
    // Coarse-grid sequentialization: AMG levels with fewer points than
    // cores cannot parallelize, and coarse operators densify (the
    // communication-complexity growth of De Sterck & Yang that the paper
    // cites). Modeled as a slow logarithmic inflation of setup/V-cycle.
    const double lp = std::log2(static_cast<double>(std::max<std::int64_t>(p, 1)));
    const double coarse_setup = 1.0 + 0.06 * lp;
    const double coarse_vcyc = 1.0 + 0.04 * lp;
    const double t_set = perf::phase_time(m, setup, p) * coarse_setup;
    const double t_vc = perf::phase_time(m, vcyc, p) * coarse_vcyc;
    const double t_mr = perf::phase_time(m, minres, p);
    const double t_ti = perf::phase_time(m, ti, p);
    const double t_amr = perf::phase_time(m, amr, p);
    std::printf("%8lld %10.3f %10.3f %10.3f %10.3f %10.4f %10.3f\n",
                static_cast<long long>(p), t_set, t_vc, t_mr, t_ti, t_amr,
                t_set + t_vc + t_mr + t_ti + t_amr);
  }
  std::printf(
      "\nShape check vs paper: MINRES/time-integration/AMR columns stay "
      "nearly\nflat under isogranular scaling while the AMG setup and "
      "V-cycle columns\ngrow with core count — the Fig. 8 structure.\n");
  return 0;
}
