// Fig. 8: isogranular scaling of the full mantle convection code at
// ~50,000 elements/core: runtime per time step broken into AMG setup,
// AMG V-cycles, MINRES iterations (element matvecs + inner products),
// explicit time integration, and the (negligible) AMR functions.
// Paper: the Stokes solve is >95% of runtime; AMR + explicit transport +
// MINRES scale nearly ideally while AMG setup/V-cycle times grow.

#include <cmath>

#include "bench_common.hpp"
#include "perf/model.hpp"
#include "rhea/simulation.hpp"

using namespace alps;

int main() {
  bench::header("Full mantle convection runtime breakdown per time step",
                "Fig. 8 (paper: Stokes solve > 95% of runtime; AMR "
                "negligible; AMG setup/V-cycle grow with core count)");
  const perf::MachineModel m = perf::MachineModel::ranger();
  bench::note("Machine model: " + m.name);

  // Real host calibration: a small convection run with one adaptation.
  long long elements = 0;
  int steps_taken = 0;
  alps::par::run(1, [&](par::Comm& c) {
    rhea::SimConfig cfg;
    cfg.init_level = 3;
    cfg.min_level = 2;
    cfg.max_level = 5;
    cfg.initial_adapt_rounds = 1;
    cfg.adapt_every = 4;
    cfg.picard.rayleigh = 1e5;
    cfg.picard.max_iterations = 2;
    cfg.picard.stokes.krylov.max_iterations = 200;
    cfg.picard.stokes.krylov.rtol = 1e-6;
    rhea::YieldingLawOptions yopt;
    yopt.sigma_y = 2.0;
    cfg.law = rhea::three_layer_yielding(yopt);
    rhea::Simulation sim(c, cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      return (1.0 - p[2]) +
             0.1 * std::cos(M_PI * p[0]) * std::sin(M_PI * p[2]);
    });
    sim.run(8);
    elements = sim.global_elements();
    steps_taken = sim.steps_taken();
  });

  // Single source for the breakdown: the cross-rank obs phase aggregates
  // of the run that just finished (P = 1 here, so median == the value).
  const std::vector<obs::PhaseBreakdown> phases = obs::aggregate_phases();
  const auto phase_total = [&phases](const char* name) {
    for (const auto& p : phases)
      if (p.name == name) return p.total_s;
    return 0.0;
  };
  const double amg_setup = phase_total("amg.setup");
  const double amg_apply = phase_total("amg.apply");
  const double minres_s = phase_total("stokes.minres") - amg_apply;
  const double assemble = phase_total("stokes.assemble");
  const double time_integration = phase_total("energy.time_integration");
  const double amr_total =
      phase_total("amr.coarsen_refine") + phase_total("amr.balance") +
      phase_total("amr.partition") + phase_total("amr.extract_mesh") +
      phase_total("amr.interpolate_fields") +
      phase_total("amr.transfer_fields") + phase_total("amr.mark_elements");

  const double steps = steps_taken;
  std::printf("\nMeasured host breakdown (%lld elements, %d steps):\n",
              elements, steps_taken);
  std::printf("  %-22s %10.4f s/step\n", "AMG setup", amg_setup / steps);
  std::printf("  %-22s %10.4f s/step\n", "AMG V-cycles", amg_apply / steps);
  std::printf("  %-22s %10.4f s/step\n", "MINRES (matvec etc.)",
              minres_s / steps);
  std::printf("  %-22s %10.4f s/step\n", "Stokes assembly", assemble / steps);
  std::printf("  %-22s %10.4f s/step\n", "TimeIntegration",
              time_integration / steps);
  std::printf("  %-22s %10.4f s/step\n", "all AMR functions",
              amr_total / steps);
  const double stokes = amg_setup + amg_apply + minres_s + assemble;
  std::printf("  Stokes share of total: %.1f%% (paper: > 95%%)\n",
              100.0 * stokes / (stokes + time_integration + amr_total));

  bench::Reporter report("fig8_mantle_breakdown", /*ranks=*/1,
                         /*problem_size=*/elements);
  report.json()
      .field("elements", elements)
      .field("steps", steps_taken)
      .obj_open("measured_s_per_step")
      .field("amg_setup", amg_setup / steps)
      .field("amg_vcycles", amg_apply / steps)
      .field("minres", minres_s / steps)
      .field("stokes_assemble", assemble / steps)
      .field("time_integration", time_integration / steps)
      .field("amr", amr_total / steps)
      .obj_close()
      .field("stokes_share",
             stokes / (stokes + time_integration + amr_total));
  report.snapshot_obs("calibration_p1");

  // Isogranular synthesis at 50K elements/core.
  const double npc = 50000.0;
  const double ne = static_cast<double>(elements);
  const auto per_elem = [&](double t) {
    return perf::to_model_seconds(m, t / steps / ne);
  };
  std::printf("\nModeled isogranular scaling (50K elem/core), seconds per "
              "time step:\n");
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "cores", "AMGsetup",
              "AMGvcycle", "MINRES", "TimeInt", "AMR", "total");
  report.json().arr_open("modeled_isogranular");
  for (std::int64_t p = 1; p <= 16384; p *= 4) {
    const double n = npc * static_cast<double>(p);
    const double levels = std::max(1.0, std::log(n / 64.0) / std::log(8.0));
    const double ghost = perf::ghost_bytes_per_rank(
        static_cast<std::int64_t>(npc), 32.0);
    // MINRES: ~60 iterations; each = 1 matvec ghost exchange + 2 dots.
    perf::PhaseCost minres{"minres", per_elem(minres_s) * n, 120, 8,
                           60 * 12, 60.0 * ghost};
    // One V-cycle per MINRES iteration and component: every level does a
    // neighbor exchange; coarse levels are latency-bound.
    perf::PhaseCost vcyc{"vcycle", per_elem(amg_apply) * n,
                         static_cast<std::int64_t>(180 * levels), 8,
                         static_cast<std::int64_t>(180 * levels * 2),
                         180.0 * ghost * 1.5};
    // Setup (amortized per step; one setup per 16 steps in the paper):
    // coarsening handshakes are communication-heavy.
    perf::PhaseCost setup{"setup", per_elem(amg_setup) * n,
                          static_cast<std::int64_t>(8 * levels * levels), 64,
                          static_cast<std::int64_t>(8 * levels * 4),
                          8.0 * ghost * 2.0};
    perf::PhaseCost ti{"ti", per_elem(time_integration) * n, 1, 8, 12,
                       ghost};
    perf::PhaseCost amr{"amr", per_elem(amr_total) * n, 4, 16, 8,
                        npc * 16.0};
    // Coarse-grid sequentialization: AMG levels with fewer points than
    // cores cannot parallelize, and coarse operators densify (the
    // communication-complexity growth of De Sterck & Yang that the paper
    // cites). Modeled as a slow logarithmic inflation of setup/V-cycle.
    const double lp = std::log2(static_cast<double>(std::max<std::int64_t>(p, 1)));
    const double coarse_setup = 1.0 + 0.06 * lp;
    const double coarse_vcyc = 1.0 + 0.04 * lp;
    const double t_set = perf::phase_time(m, setup, p) * coarse_setup;
    const double t_vc = perf::phase_time(m, vcyc, p) * coarse_vcyc;
    const double t_mr = perf::phase_time(m, minres, p);
    const double t_ti = perf::phase_time(m, ti, p);
    const double t_amr = perf::phase_time(m, amr, p);
    std::printf("%8lld %10.3f %10.3f %10.3f %10.3f %10.4f %10.3f\n",
                static_cast<long long>(p), t_set, t_vc, t_mr, t_ti, t_amr,
                t_set + t_vc + t_mr + t_ti + t_amr);
    report.json()
        .obj_open()
        .field("cores", p)
        .field("amg_setup_s", t_set)
        .field("amg_vcycle_s", t_vc)
        .field("minres_s", t_mr)
        .field("time_integration_s", t_ti)
        .field("amr_s", t_amr)
        .obj_close();
  }
  report.json().arr_close();
  report.save("BENCH_fig8_breakdown.json");
  std::printf(
      "\nShape check vs paper: MINRES/time-integration/AMR columns stay "
      "nearly\nflat under isogranular scaling while the AMG setup and "
      "V-cycle columns\ngrow with core count — the Fig. 8 structure.\n");
  return 0;
}
