// Memory-per-dof scaling: per-subsystem accounted bytes on the adapted
// variable-viscosity Poisson stack (forest -> mesh -> element operator ->
// distributed AMG hierarchy) across refinement levels at a fixed rank
// count. The paper's claim is that AMR + AMG keep memory per core bounded
// as the mesh grows, so bytes/dof must stay flat with level: the dominant
// subsystems are volume terms (operator nnz, dof tables, element
// matrices), while surface terms (halo, ghost plans) shrink per dof.
// scripts/check_bench.py gates CI on the highest-vs-lowest bytes/dof
// ratio of the total and of every subsystem that carries a significant
// share of the footprint. Results go to BENCH_memory.json.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "amg/dist_amg.hpp"
#include "bench_common.hpp"
#include "fem/operators.hpp"
#include "la/dist_csr.hpp"
#include "obs/analysis.hpp"
#include "obs/mem.hpp"

using namespace alps;

namespace {

fem::ElementOperator poisson_operator(const forest::Forest& f,
                                      const mesh::Mesh& m) {
  return fem::build_scalar_laplace(
      m, f.connectivity(),
      [](const std::array<double, 3>& p) {
        return std::exp(std::log(1e4) * (p[2] - 0.5));  // 1e4 contrast
      },
      0b111111);
}

}  // namespace

int main(int argc, char** argv) {
  const int max_level = argc > 1 ? std::atoi(argv[1]) : 5;
  const int p = 4;  // fixed rank count: bytes/dof vs level, not vs P
  obs::set_mem_enabled(true);
  bench::header(
      "Accounted memory per degree of freedom across refinement levels "
      "(per-subsystem byte accounting, obs/mem.hpp)",
      "memory-bounded AMR + AMG (Sec. III-IV)");
  std::printf("%-8s %6s %10s %10s %14s %12s %10s\n", "level", "ranks", "#elem",
              "#dof", "accounted", "bytes/dof", "imbalance");

  bench::Reporter report("memory", p);
  bench::JsonWriter& json = report.json();
  json.arr_open("cases");

  for (int level = 3; level <= max_level; ++level) {
    obs::analysis::MemRecord mrec;
    std::int64_t n_elements = 0, n_dof = 0;
    alps::par::run(p, [&](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      fem::ElementOperator op = poisson_operator(f, m);
      amg::DistAmg amg(c, op.assemble_dist(c), {});

      // Pull-model accounting, same scopes rhea::Simulation reports.
      static const obs::MemScopeId kForest = obs::mem_scope("forest.octants");
      static const obs::MemScopeId kTopo = obs::mem_scope("mesh.topology");
      static const obs::MemScopeId kDofs = obs::mem_scope("mesh.dofs");
      static const obs::MemScopeId kHalo = obs::mem_scope("mesh.halo");
      static const obs::MemScopeId kPlan = obs::mem_scope("fem.plan");
      static const obs::MemScopeId kOps = obs::mem_scope("amg.operators");
      static const obs::MemScopeId kInterp =
          obs::mem_scope("amg.interpolation");
      static const obs::MemScopeId kRap = obs::mem_scope("amg.rap_plan");
      static const obs::MemScopeId kCoarse = obs::mem_scope("amg.coarse");
      static const obs::MemScopeId kScratch = obs::mem_scope("amg.cache");
      static const obs::MemScopeId kMailbox = obs::mem_scope("par.mailbox");
      static const obs::MemScopeId kObsSelf = obs::mem_scope("obs.self");
      obs::mem_set(kForest, f.memory_bytes());
      const mesh::Mesh::MemoryBytes mb = m.memory_bytes();
      obs::mem_set(kTopo, mb.topology);
      obs::mem_set(kDofs, mb.dofs);
      obs::mem_set(kHalo, mb.halo);
      obs::mem_set(kPlan, op.memory_bytes());
      const amg::DistAmg::MemoryBytes ab = amg.memory_bytes();
      obs::mem_set(kOps, ab.operators);
      obs::mem_set(kInterp, ab.interpolation);
      obs::mem_set(kRap, ab.rap);
      obs::mem_set(kCoarse, ab.coarse);
      obs::mem_set(kScratch, ab.scratch);
      obs::mem_set(kMailbox, c.pending_recv_bytes());
      obs::mem_set(kObsSelf, obs::self_memory_bytes());

      const obs::analysis::MemRecord rec =
          obs::analysis::analyze_memory(c, level);
      const std::int64_t ne = c.allreduce_sum(f.tree().num_local());
      if (c.rank() == 0) {
        mrec = rec;
        n_elements = ne;
        n_dof = amg.finest().global_rows();
      }
    });

    const double bpd = n_dof > 0 ? static_cast<double>(mrec.acc_total) /
                                       static_cast<double>(n_dof)
                                 : 0.0;
    std::printf("L%-7d %6d %10lld %10lld %14llu %12.1f %10.3f\n", level, p,
                static_cast<long long>(n_elements),
                static_cast<long long>(n_dof),
                static_cast<unsigned long long>(mrec.acc_total), bpd,
                mrec.acc_imbalance);

    json.obj_open()
        .field("level", level)
        .field("ranks", p)
        .field("n_elements", n_elements)
        .field("n_dof", n_dof)
        .field("accounted_bytes", mrec.acc_total)
        .field("accounted_max_rank_bytes", mrec.acc_max)
        .field("imbalance", mrec.acc_imbalance)
        .field("bytes_per_dof", bpd);
    json.arr_open("subsystems");
    for (const auto& s : mrec.subsystems) {
      json.obj_open()
          .field("name", s.scope)
          .field("bytes", s.total)
          .field("max_bytes", s.max)
          .field("argmax_rank", s.argmax);
      if (n_dof > 0)
        json.field("bytes_per_dof",
                   static_cast<double>(s.total) / static_cast<double>(n_dof));
      json.obj_close();
    }
    json.arr_close();
    json.obj_open("rss").field("available", mrec.rss_available);
    if (mrec.rss_available)
      json.field("max_bytes", mrec.rss_max).field("hwm_bytes", mrec.rss_hwm_max);
    json.obj_close();
    json.obj_close();
    report.snapshot_obs("memory_level" + std::to_string(level));
  }

  json.arr_close();
  report.save("BENCH_memory.json");

  std::printf(
      "\nShape check: total and dominant-subsystem bytes/dof flat across "
      "levels\n(memory per core bounded as the mesh grows); surface terms "
      "(mesh.halo)\nmay shrink per dof. scripts/check_bench.py enforces the "
      "flatness ratio in CI.\n");
  return 0;
}
