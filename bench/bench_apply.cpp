// Matrix-free apply hot path: lane-batched SoA element kernels with
// comm-compute overlap (ElementOperator::apply) versus the scalar
// reference path (apply_scalar), reported as nanoseconds per element on a
// level-4 adapted mesh. Also verifies the reduced-synchronization Krylov
// loops: CG and MINRES must issue at most 2 global reductions per
// iteration (comm.sync.* obs counters) and the fused multi-value
// reductions must not change iteration counts versus per-dot reductions.
// Results go to BENCH_apply.json; scripts/check_bench.py gates CI on the
// speedup and the sync counts.

#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fem/operators.hpp"
#include "la/krylov.hpp"
#include "obs/obs.hpp"

using namespace alps;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

fem::ElementOperator laplace_operator(const forest::Forest& f,
                                      const mesh::Mesh& m) {
  return fem::build_scalar_laplace(
      m, f.connectivity(),
      [](const std::array<double, 3>& p) {
        return std::exp(std::log(1e4) * (p[2] - 0.5));
      },
      0b111111);
}

/// Stokes-shaped 4-component operator: the scalar Laplacian replicated on
/// the block diagonal, Dirichlet on components 0..2 at physical walls.
/// Same block size (32x32) and gather pattern as the real viscous block,
/// so the element matvec cost is representative.
fem::ElementOperator vector_operator(const mesh::Mesh& m,
                                     const fem::ElementOperator& lap) {
  fem::ElementOperator op(&m, 4);
  const std::size_t bs = op.block_size();
  for (std::size_t e = 0; e < m.elements.size(); ++e) {
    const std::span<const double> m1 = lap.element_matrix(e);
    std::span<double> m4 = op.element_matrix(e);
    for (std::size_t i = 0; i < 8; ++i)
      for (std::size_t j = 0; j < 8; ++j)
        for (std::size_t c = 0; c < 4; ++c)
          m4[(i * 4 + c) * bs + j * 4 + c] = m1[i * 8 + j];
  }
  for (std::int64_t d = 0; d < m.n_local; ++d)
    if (m.dof_boundary[static_cast<std::size_t>(d)] != 0)
      for (int c = 0; c < 3; ++c) op.set_dirichlet(d, c);
  return op;
}

/// Deterministic ghost-consistent input: a function of the global id.
std::vector<double> test_vector(const mesh::Mesh& m, int ncomp) {
  std::vector<double> x(static_cast<std::size_t>(m.n_local) * ncomp);
  for (std::int64_t d = 0; d < m.n_local; ++d)
    for (int c = 0; c < ncomp; ++c)
      x[static_cast<std::size_t>(d) * ncomp + c] =
          std::sin(0.001 * static_cast<double>(
                               m.dof_gids[static_cast<std::size_t>(d)]) +
                   0.1 * c);
  return x;
}

/// Best-of-trials timing for both paths, trials interleaved so slow drift
/// (frequency scaling, co-tenants on shared CI runners) hits both equally.
/// The min filters contention noise: it is the cleanest measure of the
/// code, which is what the speedup gate is about.
std::pair<double, double> time_pair(const std::function<void()>& a,
                                    const std::function<void()>& b, int reps,
                                    int trials) {
  a();  // warm up: builds the plans, faults the pages
  b();
  double ta = 1e300, tb = 1e300;
  for (int t = 0; t < trials; ++t) {
    double t0 = now_s();
    for (int i = 0; i < reps; ++i) a();
    ta = std::min(ta, (now_s() - t0) / reps);
    t0 = now_s();
    for (int i = 0; i < reps; ++i) b();
    tb = std::min(tb, (now_s() - t0) / reps);
  }
  return {ta, tb};
}

struct SolverProbe {
  int iters_fused = 0, iters_reference = 0;
  std::uint64_t syncs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int level = argc > 1 ? std::atoi(argv[1]) : 4;
  bench::header(
      "Matrix-free apply: batched SoA element kernels + overlapped halo "
      "vs scalar reference; reduced-sync Krylov",
      "matvec hot path (paper Sec. III solver cost)");

  bench::Reporter report("apply");
  bench::JsonWriter& json = report.json();
  json.field("level", level);
  json.arr_open("cases");

  std::printf("%-6s %6s %6s %10s %12s %14s %14s %8s\n", "level", "ranks",
              "ncomp", "#elem", "#boundary", "scalar ns/el", "batched ns/el",
              "speedup");

  // Headline timing at P=1: the container pins everything to one core, so
  // thread-ranks would contend and time each other, not the kernels. The
  // overlap machinery still runs (empty neighbor lists).
  for (const int ncomp : {1, 4}) {
    double t_scalar = 0, t_batched = 0;
    std::int64_t n_elem = 0, n_boundary = 0;
    double t_hw = 0;  // wall seconds of the counted pass
    int hw_reps = 0;
    std::size_t mat_doubles = 0, bs = 0;
    alps::par::run(1, [&](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      fem::ElementOperator lap = laplace_operator(f, m);
      fem::ElementOperator op =
          ncomp == 1 ? std::move(lap) : vector_operator(m, lap);
      const std::vector<double> x = test_vector(m, ncomp);
      std::vector<double> y(x.size());
      n_elem = m.num_elements();
      const int reps =
          std::max(10, static_cast<int>(2'000'000 / (n_elem * ncomp)));
      std::tie(t_scalar, t_batched) = time_pair(
          [&] { op.apply_scalar(c, x, y); }, [&] { op.apply(c, x, y); },
          reps, 5);
      n_boundary = static_cast<std::int64_t>(op.boundary_elements());
      // Hardware-counter pass, separate from the timing loop: the two
      // perf reads per apply would skew the batched-vs-scalar comparison.
      // Pins the matrix-stream-bound claim: bytes/s over the known plan
      // stream and FLOP/s from the logical 2 flops per block entry.
      mat_doubles = op.plan_matrix_doubles();
      bs = op.block_size();
      hw_reps = reps;
      alps::obs::set_hw_enabled(true);
      const double h0 = now_s();
      for (int i = 0; i < reps; ++i) op.apply(c, x, y);
      t_hw = now_s() - h0;
      alps::obs::set_hw_enabled(false);
    });
    const double ns_scalar = 1e9 * t_scalar / static_cast<double>(n_elem);
    const double ns_batched = 1e9 * t_batched / static_cast<double>(n_elem);
    const double speedup = ns_scalar / ns_batched;
    std::printf("L%-5d %6d %6d %10lld %12lld %14.1f %14.1f %7.2fx\n", level,
                1, ncomp, static_cast<long long>(n_elem),
                static_cast<long long>(n_boundary), ns_scalar, ns_batched,
                speedup);
    json.obj_open()
        .field("level", level)
        .field("ranks", 1)
        .field("ncomp", ncomp)
        .field("n_elements", n_elem)
        .field("scalar_ns_per_element", ns_scalar)
        .field("batched_ns_per_element", ns_batched)
        .field("speedup", speedup);
    {
      const double matrix_bytes = static_cast<double>(mat_doubles) * 8.0;
      const double flops = 2.0 * static_cast<double>(bs) *
                           static_cast<double>(bs) *
                           static_cast<double>(n_elem);
      const double per_apply_s = t_hw / std::max(1, hw_reps);
      json.obj_open("hw")
          .field("matrix_bytes_per_apply", matrix_bytes)
          .field("flops_per_apply", flops)
          .field("matrix_bytes_per_s", matrix_bytes / per_apply_s)
          .field("flops_per_s", flops / per_apply_s);
      // Counter-derived rates when perf_event delivered real counts for
      // the fem.apply spans of the counted pass; "available": false
      // otherwise (unprivileged CI), never fabricated zeros.
      alps::obs::HwCounts counts;
      for (const auto& [name, hc] : alps::obs::aggregate_hw())
        if (name == "fem.apply") counts = hc;
      json.field("available", counts.available());
      if (counts.available() && counts.spans > 0) {
        const double spans = static_cast<double>(counts.spans);
        if (counts.cycles_ok) {
          json.field("cycles_per_apply",
                     static_cast<double>(counts.cycles) / spans);
          json.field("matrix_bytes_per_cycle",
                     matrix_bytes * spans /
                         static_cast<double>(counts.cycles));
        }
        if (counts.instructions_ok)
          json.field("instructions_per_apply",
                     static_cast<double>(counts.instructions) / spans);
        if (counts.llc_ok)
          json.field("llc_misses_per_apply",
                     static_cast<double>(counts.llc_misses) / spans);
        if (counts.stalled_ok)
          json.field("stalled_cycles_per_apply",
                     static_cast<double>(counts.stalled_cycles) / spans);
      }
      json.obj_close();
      std::printf(
          "       hw[%d-comp]: %s, %.2f GB/s matrix stream, %.2f GFLOP/s\n",
          ncomp, counts.available() ? "perf counters" : "perf unavailable",
          matrix_bytes / per_apply_s * 1e-9, flops / per_apply_s * 1e-9);
    }
    json.obj_close();
  }
  json.arr_close();

  // Reduced-synchronization Krylov at P=2: count reduction rounds per
  // iteration via the comm.sync.* counters and check the fused multi-value
  // reductions leave iteration counts unchanged versus one-dot-per-round.
  json.arr_open("solvers");
  std::printf("\n%-8s %6s %8s %8s %10s %14s\n", "solver", "ranks", "iters",
              "iters1", "syncs", "sync/iter");
  for (const char* solver : {"cg", "minres"}) {
    const bool is_cg = solver[0] == 'c';
    SolverProbe probe;
    alps::par::run(2, [&](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      // Constant coefficient: converges without a preconditioner, so the
      // probe measures the solver's reduction rounds, not AMG's.
      fem::ElementOperator op = fem::build_scalar_laplace(
          m, f.connectivity(),
          [](const std::array<double, 3>&) { return 1.0; }, 0b111111);
      const std::vector<double> xe = test_vector(m, 1);
      std::vector<double> b(xe.size()), x(xe.size(), 0.0);
      op.apply(c, xe, b);
      la::KrylovOptions kopt;
      kopt.rtol = 1e-6;
      const obs::CounterId cid = is_cg ? obs::wellknown::cg_syncs()
                                       : obs::wellknown::minres_syncs();
      const std::uint64_t s0 = obs::counter_value(c.rank(), cid);
      const la::SolveResult rf =
          is_cg ? la::cg(op.as_linop(c), b, x, la::identity_op(),
                         op.as_multi_dot(c), kopt)
                : la::minres(op.as_linop(c), b, x, la::identity_op(),
                             op.as_multi_dot(c), kopt);
      const std::uint64_t s1 = obs::counter_value(c.rank(), cid);
      // Reference: same math, one reduction per dot (the compat path).
      std::fill(x.begin(), x.end(), 0.0);
      const la::SolveResult rr =
          is_cg ? la::cg(op.as_linop(c), b, x, la::identity_op(),
                         op.as_dot(c), kopt)
                : la::minres(op.as_linop(c), b, x, la::identity_op(),
                             op.as_dot(c), kopt);
      if (c.rank() == 0) {
        probe.iters_fused = rf.iterations;
        probe.iters_reference = rr.iterations;
        probe.syncs = s1 - s0;
      }
    });
    // One startup reduction precedes the loop; iterations then cost
    // exactly (syncs - 1) / iters rounds each.
    const double per_iter =
        probe.iters_fused > 0
            ? static_cast<double>(probe.syncs - 1) / probe.iters_fused
            : 0.0;
    std::printf("%-8s %6d %8d %8d %10llu %14.3f\n", solver, 2,
                probe.iters_fused, probe.iters_reference,
                static_cast<unsigned long long>(probe.syncs), per_iter);
    json.obj_open()
        .field("solver", std::string(solver))
        .field("ranks", 2)
        .field("iters_fused", probe.iters_fused)
        .field("iters_reference", probe.iters_reference)
        .field("syncs", probe.syncs)
        .field("sync_per_iter", per_iter);
    json.obj_close();
    report.snapshot_obs(std::string(solver) + "_p2");
  }
  json.arr_close();
  report.save("BENCH_apply.json");

  std::printf(
      "\nShape check: batched speedup >= 2x on the 4-component (Stokes-"
      "shaped)\ncase; sync/iter <= 2 for both solvers; fused vs reference "
      "iteration\ncounts equal. scripts/check_bench.py enforces all three "
      "in CI.\n");
  return 0;
}
