// Ablation studies for the design choices DESIGN.md calls out:
//  (a) 2:1 balance adjacency (face vs face+edge vs full corner): element
//      overhead and ripple rounds;
//  (b) SFC partition quality: load imbalance and fraction of elements
//      moved, unweighted vs element-weighted;
//  (c) hanging-node share on realistically adapted meshes.

#include <cmath>

#include "bench_common.hpp"
#include "mesh/mesh.hpp"
#include "octree/balance.hpp"
#include "octree/partition.hpp"

using namespace alps;

int main() {
  bench::header("AMR design ablations", "design choices in Sec. IV");

  // (a) balance adjacency.
  std::printf("\n(a) 2:1 balance adjacency (level-5 refinement toward the "
              "domain center):\n");
  std::printf("%12s %10s %8s %10s\n", "adjacency", "elements", "rounds",
              "overhead");
  for (auto [name, adj] :
       {std::pair{"face", octree::Adjacency::kFace},
        std::pair{"face+edge", octree::Adjacency::kFaceEdge},
        std::pair{"full(26)", octree::Adjacency::kFull}}) {
    alps::par::run(2, [name = name, adj = adj](par::Comm& c) {
      forest::Forest f =
          forest::Forest::new_uniform(c, forest::Connectivity::unit_cube(), 1);
      // Point refinement at the domain center: the deep leaves touch the
      // untouched coarse half, so the mesh is strongly unbalanced.
      const octree::coord_t mid = octree::coord_t{1} << (octree::kMaxLevel - 1);
      for (int round = 0; round < 5; ++round) {
        std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
        for (std::size_t i = 0; i < flags.size(); ++i) {
          const auto& o = f.tree().leaves()[i];
          if (o.x == mid && o.y == mid && o.z == mid) flags[i] = 1;
        }
        f.tree().adapt(flags, 0, 7);
      }
      f.tree().update_ranges(c);
      const std::int64_t before = c.allreduce_sum(f.tree().num_local());
      const int rounds = octree::balance(c, f.tree(), adj, f.connectivity().neighbor_fn());
      const std::int64_t after = c.allreduce_sum(f.tree().num_local());
      if (c.rank() == 0)
        std::printf("%12s %10lld %8d %9.2f%%\n", name,
                    static_cast<long long>(after), rounds,
                    100.0 * static_cast<double>(after - before) /
                        static_cast<double>(before));
    });
  }

  // (b) partition quality.
  std::printf("\n(b) SFC partition (4 ranks, skewed refinement):\n");
  std::printf("%14s %12s %12s\n", "weighting", "imbalance", "moved");
  for (bool weighted : {false, true}) {
    alps::par::run(4, [weighted](par::Comm& c) {
      forest::Forest f =
          forest::Forest::new_uniform(c, forest::Connectivity::unit_cube(), 3);
      // Skew the load: refine twice near the low-SFC corner (no
      // repartitioning yet), so the first rank ends up overloaded.
      for (int round = 0; round < 2; ++round) {
        const auto& conn = f.connectivity();
        std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
        for (std::size_t i = 0; i < flags.size(); ++i) {
          const auto& o = f.tree().leaves()[i];
          const auto h = octree::octant_len(o.level);
          const auto pnt = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
          if (pnt[0] + pnt[1] + pnt[2] < 0.8) flags[i] = 1;
        }
        f.tree().adapt(flags, 0, 6);
      }
      f.tree().update_ranges(c);
      octree::balance(c, f.tree());
      const std::vector<octree::Octant> before = f.tree().leaves();
      std::vector<double> w;
      if (weighted) {
        // Model: refined elements carry more solver work (smaller dt).
        w.resize(static_cast<std::size_t>(f.tree().num_local()));
        for (std::size_t i = 0; i < w.size(); ++i)
          w[i] = std::pow(2.0, f.tree().leaves()[i].level - 3);
      }
      octree::partition(c, f.tree(), {}, w);
      std::int64_t stayed = 0;
      std::size_t i = 0;
      for (const auto& o : f.tree().leaves()) {
        while (i < before.size() && octree::sfc_less(before[i], o)) ++i;
        if (i < before.size() && before[i] == o) stayed++;
      }
      const std::int64_t total = c.allreduce_sum(f.tree().num_local());
      const std::int64_t moved = total - c.allreduce_sum(stayed);
      const double imb = octree::load_imbalance(c, f.tree());
      if (c.rank() == 0)
        std::printf("%14s %12.3f %11.1f%%\n",
                    weighted ? "element-weight" : "equal-count", imb,
                    100.0 * static_cast<double>(moved) /
                        static_cast<double>(total));
    });
  }

  // (c) hanging-node share.
  std::printf("\n(c) hanging nodes on adapted meshes:\n");
  std::printf("%8s %10s %12s %14s\n", "level", "elements", "indep dofs",
              "hanging corners");
  for (int level : {3, 4}) {
    alps::par::run(2, [level](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 2, level + 2);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      std::int64_t hanging = 0;
      for (const auto& ec : m.corners)
        for (const auto& cc : ec)
          if (cc.hanging) hanging++;
      hanging = c.allreduce_sum(hanging);
      const std::int64_t ne = c.allreduce_sum(f.tree().num_local());
      if (c.rank() == 0)
        std::printf("%8d %10lld %12lld %14lld\n", level,
                    static_cast<long long>(ne),
                    static_cast<long long>(m.n_global),
                    static_cast<long long>(hanging));
    });
  }
  std::printf(
      "\nTakeaways: face+edge balance (the paper's choice) costs only a "
      "little more\nthan face-only but guarantees single-level hanging "
      "constraints; SFC\npartitioning achieves near-perfect balance while "
      "moving a bounded fraction\nof elements.\n");
  return 0;
}
