// Sec. VII: matrix-based vs tensor-product element derivative kernels.
// The matrix variant does 6(p+1)^6 flops per element in one large
// cache-friendly dgemm; the tensor variant does 6(p+1)^4 flops. The paper
// finds the runtime crossover between p = 2 and p = 4 on Ranger, with the
// matrix variant sustaining far higher flop rates (30-145 TF/s at scale)
// despite doing ~20x more arithmetic at p = 6.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <vector>

#include "dg/kernels.hpp"
#include "perf/model.hpp"

namespace {

std::vector<double> random_field(std::int64_t n) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> u(static_cast<std::size_t>(n));
  for (double& v : u) v = d(rng);
  return u;
}

void BM_TensorKernel(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  alps::dg::DerivativeKernel k(p);
  const std::vector<double> u = random_field(k.nodes_per_elem());
  std::vector<double> x(u.size()), y(u.size()), z(u.size());
  for (auto _ : state) {
    k.apply_tensor(u, x, y, z);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["flops/elem"] = static_cast<double>(k.flops_tensor());
  state.counters["GF/s"] = benchmark::Counter(
      static_cast<double>(k.flops_tensor()) * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_MatrixKernel(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  alps::dg::DerivativeKernel k(p);
  const std::vector<double> u = random_field(k.nodes_per_elem());
  std::vector<double> x(u.size()), y(u.size()), z(u.size());
  for (auto _ : state) {
    k.apply_matrix(u, x, y, z);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["flops/elem"] = static_cast<double>(k.flops_matrix());
  state.counters["GF/s"] = benchmark::Counter(
      static_cast<double>(k.flops_matrix()) * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_TensorKernel)->Arg(2)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK(BM_MatrixKernel)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Sec. VII: matrix vs tensor DG derivative kernels. Paper findings: "
      "crossover\nbetween p=2 and p=4 on Ranger; matrix variant sustains "
      "30 TF/s (p=4) to 145 TF/s\n(p=8, 32K cores) while the tensor "
      "variant runs ~2x faster at p=6 despite a\n~20x lower flop rate. "
      "Compare the per-order Time columns for the crossover and\nthe GF/s "
      "counters for the rate gap.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Modeled sustained-teraflops analog of the paper's headline numbers.
  const alps::perf::MachineModel m = alps::perf::MachineModel::ranger();
  std::printf("\nModeled sustained rate at scale (matrix kernel, %s):\n",
              m.name.c_str());
  for (const auto& [p, cores, frac] :
       {std::tuple{4, 16384, 0.9}, std::tuple{8, 32768, 0.95}}) {
    const double tf = m.core_flops * cores * frac / 1e12;
    std::printf("  p=%d on %d cores: ~%.0f TF/s (paper: %s)\n", p, cores, tf,
                p == 4 ? "30 TF/s" : "145 TF/s");
  }
  return 0;
}
