// Fig. 10 (table): per-AMR-function timings for the full mantle
// convection solve, per mesh adaptation step (= per 16 time steps in the
// paper). Paper: AMR time is < 1% of solve time at every scale.

#include <cmath>

#include "bench_common.hpp"
#include "rhea/simulation.hpp"

using namespace alps;

int main() {
  bench::header("AMR function timings within the full mantle convection code",
                "Fig. 10 (paper: AMR/solve < 1% from 1 to 16,384 cores)");

  for (int level : {2, 3}) {
    const int steps = level == 2 ? 6 : 5;
    rhea::PhaseTimers t;
    long long elements = 0;
    int adapts = 0;
    double newtree = 0;
    alps::par::run(2, [&](par::Comm& c) {
      rhea::SimConfig cfg;
      cfg.init_level = level;
      cfg.min_level = 2;
      cfg.max_level = level + 2;
      cfg.initial_adapt_rounds = 1;
      cfg.adapt_every = 4;
      cfg.picard.rayleigh = 1e5;
      cfg.picard.max_iterations = 2;
      cfg.picard.stokes.krylov.max_iterations = 120;
      cfg.picard.stokes.krylov.rtol = 1e-5;
      rhea::YieldingLawOptions yopt;
      cfg.law = rhea::three_layer_yielding(yopt);
      rhea::Simulation sim(c, cfg);
      sim.initialize([](const std::array<double, 3>& p) {
        return (1.0 - p[2]) +
               0.08 * std::cos(M_PI * p[0]) * std::sin(M_PI * p[2]);
      });
      sim.run(steps);
      const long long ne = sim.global_elements();  // collective: all ranks
      if (c.rank() == 0) {
        t = sim.timers();
        elements = ne;
        adapts = static_cast<int>(sim.adapt_history().size());
        newtree = sim.timers().new_tree;
      }
    });
    const double na = std::max(1, adapts);
    const double solve = t.minres + t.amg_setup + t.amg_apply +
                         t.stokes_assemble + t.time_integration;
    std::printf("\n-- mesh level %d, %lld elements, %d adaptation steps --\n",
                level, elements, adapts);
    std::printf("%-14s %10s\n", "function", "s/adapt");
    std::printf("%-14s %10.4f   (once per simulation)\n", "NewTree", newtree);
    std::printf("%-14s %10.4f\n", "Coarsen/Refine", t.coarsen_refine / na);
    std::printf("%-14s %10.4f\n", "BalanceTree", t.balance / na);
    std::printf("%-14s %10.4f\n", "PartitionTree", t.partition / na);
    std::printf("%-14s %10.4f\n", "ExtractMesh", t.extract_mesh / na);
    std::printf("%-14s %10.4f\n", "InterpolateF", t.interpolate_fields / na);
    std::printf("%-14s %10.4f\n", "MarkElements", t.mark_elements / na);
    std::printf("%-14s %10.4f\n", "Solve time", solve / na);
    std::printf("AMR time / solve time = %.2f%%   (paper: < 1%%)\n",
                100.0 * t.amr_total() / solve);
  }

  std::printf(
      "\nPaper reference (Fig. 10, seconds per adaptation step at 1 core):\n"
      "  NewTree 0.16 (once), Coarsen/Refine 0.01, Balance 0.03, Partition "
      "0.00,\n  ExtractMesh 0.48, Interp+Transfer 0.05, MarkElements 0.04, "
      "Solve 269.0,\n  AMR/solve 0.23%%.\n"
      "Shape check: ExtractMesh dominates the AMR share; everything is "
      "dwarfed by\nthe implicit Stokes solve.\n");
  return 0;
}
