// Fig. 10 (table): per-AMR-function timings for the full mantle
// convection solve, per mesh adaptation step (= per 16 time steps in the
// paper). Paper: AMR time is < 1% of solve time at every scale. Runs at
// P = 2 and reports the cross-rank min/median/max/imbalance of every
// phase from the obs aggregator — the per-rank spread is exactly what the
// paper's per-function tables summarize.

#include <cmath>

#include "bench_common.hpp"
#include "rhea/simulation.hpp"

using namespace alps;

namespace {

const obs::PhaseBreakdown* find_phase(
    const std::vector<obs::PhaseBreakdown>& phases, const char* name) {
  for (const auto& p : phases)
    if (p.name == name) return &p;
  return nullptr;
}

double median_of(const std::vector<obs::PhaseBreakdown>& phases,
                 const char* name) {
  const obs::PhaseBreakdown* p = find_phase(phases, name);
  return p ? p->median_s : 0.0;
}

}  // namespace

int main() {
  bench::header("AMR function timings within the full mantle convection code",
                "Fig. 10 (paper: AMR/solve < 1% from 1 to 16,384 cores)");

  bench::Reporter report("fig10_amr_timings");
  report.json().arr_open("cases");

  for (int level : {2, 3}) {
    const int steps = level == 2 ? 6 : 5;
    const int p = 2;
    long long elements = 0;
    int adapts = 0;
    alps::par::run(p, [&](par::Comm& c) {
      rhea::SimConfig cfg;
      cfg.init_level = level;
      cfg.min_level = 2;
      cfg.max_level = level + 2;
      cfg.initial_adapt_rounds = 1;
      cfg.adapt_every = 4;
      cfg.picard.rayleigh = 1e5;
      cfg.picard.max_iterations = 2;
      cfg.picard.stokes.krylov.max_iterations = 120;
      cfg.picard.stokes.krylov.rtol = 1e-5;
      rhea::YieldingLawOptions yopt;
      cfg.law = rhea::three_layer_yielding(yopt);
      rhea::Simulation sim(c, cfg);
      sim.initialize([](const std::array<double, 3>& p) {
        return (1.0 - p[2]) +
               0.08 * std::cos(M_PI * p[0]) * std::sin(M_PI * p[2]);
      });
      sim.run(steps);
      const long long ne = sim.global_elements();  // collective: all ranks
      if (c.rank() == 0) {
        elements = ne;
        adapts = static_cast<int>(sim.adapt_history().size());
      }
    });
    // Cross-rank phase statistics of the run that just finished.
    const std::vector<obs::PhaseBreakdown> phases = obs::aggregate_phases();
    const double na = std::max(1, adapts);
    const double solve = median_of(phases, "stokes.minres") +
                         median_of(phases, "amg.setup") +
                         median_of(phases, "stokes.assemble") +
                         median_of(phases, "energy.time_integration");
    std::printf("\n-- mesh level %d, %lld elements, %d adaptation steps, "
                "P = %d --\n",
                level, elements, adapts, p);
    std::printf("%-16s %10s %10s %10s %10s\n", "function", "min/adapt",
                "med/adapt", "max/adapt", "imbalance");
    const struct {
      const char* label;
      const char* phase;
    } rows[] = {{"NewTree", "amr.new_tree"},
                {"Coarsen/Refine", "amr.coarsen_refine"},
                {"BalanceTree", "amr.balance"},
                {"PartitionTree", "amr.partition"},
                {"ExtractMesh", "amr.extract_mesh"},
                {"InterpolateF", "amr.interpolate_fields"},
                {"TransferFields", "amr.transfer_fields"},
                {"MarkElements", "amr.mark_elements"}};
    double amr_median = 0.0;
    for (const auto& row : rows) {
      const obs::PhaseBreakdown* pb = find_phase(phases, row.phase);
      if (!pb) continue;
      // NewTree happens once per simulation, not once per adaptation.
      const double div = std::string(row.phase) == "amr.new_tree" ? 1.0 : na;
      std::printf("%-16s %10.4f %10.4f %10.4f %10.2f\n", row.label,
                  pb->min_s / div, pb->median_s / div, pb->max_s / div,
                  pb->imbalance);
      if (div == na) amr_median += pb->median_s;
    }
    std::printf("%-16s %10s %10.4f\n", "Solve time", "", solve / na);
    std::printf("AMR time / solve time = %.2f%%   (paper: < 1%%)\n",
                100.0 * amr_median / solve);
    report.json()
        .obj_open()
        .field("level", level)
        .field("ranks", p)
        .field("elements", elements)
        .field("adaptations", adapts)
        .field("amr_over_solve", amr_median / solve)
        .obj_close();
    report.snapshot_obs("level" + std::to_string(level) + "_p" +
                        std::to_string(p));
  }

  report.json().arr_close();
  report.save("BENCH_fig10_amr.json");

  std::printf(
      "\nPaper reference (Fig. 10, seconds per adaptation step at 1 core):\n"
      "  NewTree 0.16 (once), Coarsen/Refine 0.01, Balance 0.03, Partition "
      "0.00,\n  ExtractMesh 0.48, Interp+Transfer 0.05, MarkElements 0.04, "
      "Solve 269.0,\n  AMR/solve 0.23%%.\n"
      "Shape check: ExtractMesh dominates the AMR share; everything is "
      "dwarfed by\nthe implicit Stokes solve.\n");
  return 0;
}
