// Fig. 12 + Sec. VII scalability text: high-order DG advection on the
// cubed-sphere shell (24-tree forest) with dynamic adaptivity. The paper
// shows the partition changing drastically between adjacent time steps
// and reports 90% weak-scaling efficiency for p=4 on 16,384 cores and
// 83% for p=6 on 32,768 cores.

#include <cmath>

#include "bench_common.hpp"
#include "dg/advect.hpp"
#include "octree/mark.hpp"
#include "octree/partition.hpp"
#include "perf/model.hpp"

using namespace alps;

int main() {
  bench::header("Forest-of-octrees DG advection on the spherical shell",
                "Fig. 12 + Sec. VII (90% weak efficiency at p=4/16,384 "
                "cores; drastic repartitioning between steps)");
  const int order = 2;
  double elem_seconds = 0.0;
  alps::par::run(2, [&](par::Comm& c) {
    forest::Forest f =
        forest::Forest::new_uniform(c, forest::Connectivity::cubed_sphere_shell(), 1);
    const auto geom = dg::shell_geometry(f.connectivity(), 0.55, 1.0);
    const auto vel = [](const std::array<double, 3>& x, double) {
      return dg::solid_body_rotation(x, 1.0);
    };
    const auto front = [](const std::array<double, 3>& x) {
      const double dx = x[0] - 0.8, dy = x[1], dz = x[2];
      return std::exp(-120.0 * (dx * dx + dy * dy + dz * dz));
    };

    auto dg_solver = std::make_unique<dg::DgAdvection>(c, f, order, geom, vel);
    std::vector<double> u = dg_solver->interpolate(front);
    double t = 0.0;
    const std::int64_t n3 = dg_solver->nodes_per_elem();

    if (c.rank() == 0)
      std::printf("\n%6s %10s %10s %14s %12s\n", "cycle", "elements",
                  "steps", "moved-elems", "mass-drift");
    const double mass0 = dg_solver->integral(c, u);
    for (int cycle = 0; cycle < 4; ++cycle) {
      // A few RK steps.
      const double dt = dg_solver->stable_dt(c, t);
      for (int s = 0; s < 80; ++s) {
        dg_solver->step(c, u, t, dt);
        t += dt;
      }
      // Adapt: mark from the DG gradient indicator, rebalance, move
      // element payloads, rebuild the solver.
      const std::vector<double> eta = dg_solver->indicator(u);
      octree::MarkOptions mopt;
      mopt.target_elements = 700;  // resolve the front, then track it
      mopt.min_level = 1;
      mopt.max_level = 3;
      const std::vector<std::int8_t> flags =
          octree::mark_elements(c, f.tree(), eta, mopt);
      const std::vector<octree::Octant> old_leaves = f.tree().leaves();
      f.tree().adapt(flags, 1, 3);
      f.balance(c);
      const octree::Correspondence corr =
          octree::compute_correspondence(old_leaves, f.tree().leaves());
      std::vector<double> u2 = dg::dg_interpolate_element_values(
          order, old_leaves, f.tree().leaves(), corr, u);
      // Partition and measure how much of the mesh moved (Fig. 12's
      // drastically-changing partition).
      const std::vector<octree::Octant> pre_part = f.tree().leaves();
      octree::LeafPayload payload{static_cast<int>(n3), std::move(u2)};
      octree::LeafPayload* ps[] = {&payload};
      f.partition(c, ps);
      u = std::move(payload.data);
      std::int64_t stayed = 0;
      {
        // Elements still on this rank after repartitioning.
        std::size_t i = 0;
        for (const auto& o : f.tree().leaves()) {
          while (i < pre_part.size() && octree::sfc_less(pre_part[i], o)) ++i;
          if (i < pre_part.size() && pre_part[i] == o) stayed++;
        }
      }
      const std::int64_t total = c.allreduce_sum(f.tree().num_local());
      const std::int64_t moved = total - c.allreduce_sum(stayed);
      dg_solver = std::make_unique<dg::DgAdvection>(c, f, order, geom, vel);
      const double drift =
          std::abs(dg_solver->integral(c, u) - mass0) / std::abs(mass0);
      if (c.rank() == 0)
        std::printf("%6d %10lld %10d %14lld %12.2e\n", cycle,
                    static_cast<long long>(total), 80,
                    static_cast<long long>(moved), drift);
    }

    // Host rate for the weak-efficiency model below.
    const double t0 = perf::measure_seconds([&] {
      std::vector<double> r(u.size());
      dg_solver->rhs(c, u, t, r);
    });
    elem_seconds = t0 / static_cast<double>(dg_solver->num_local_elements());
  });

  // Weak-scaling efficiency synthesis (Sec. VII numbers).
  const perf::MachineModel m = perf::MachineModel::ranger();
  std::printf("\nModeled DG weak-scaling efficiency (order %d, %s):\n",
              order, m.name.c_str());
  std::printf("%8s %10s\n", "cores", "efficiency");
  const double npc = 200.0;  // elements per core (high-order: few, fat elems)
  double t1 = 0.0;
  for (std::int64_t p = 1; p <= 32768; p *= 8) {
    perf::PhaseCost rhs{"rhs",
                        perf::to_model_seconds(m, elem_seconds) * npc *
                            static_cast<double>(p),
                        1, 8, 26,
                        6.0 * std::pow(npc, 2.0 / 3.0) * 8.0 *
                            std::pow(order + 1.0, 2.0)};
    const double tp = perf::phase_time(m, rhs, p);
    if (p == 1) t1 = tp;
    std::printf("%8lld %9.1f%%\n", static_cast<long long>(p),
                100.0 * t1 / tp);
  }
  std::printf(
      "\nShape check vs paper: a large fraction of the mesh changes owner "
      "at every\nadaptation step while mass stays conserved to "
      "discretization accuracy, and\nthe modeled weak efficiency stays "
      "high (paper: 90%% at p=4 on 16,384 cores)\nbecause high-order "
      "elements carry much work per byte communicated.\n");
  return 0;
}
