#include "bench_common.hpp"

#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

#include "rhea/simulation.hpp"

namespace bench {

namespace {

std::string bench_date() {
  // ALPS_BENCH_DATE pins the stamp for byte-reproducible CI artifacts.
  if (const char* env = std::getenv("ALPS_BENCH_DATE"))
    if (*env != '\0') return env;
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::tm tm{};
  gmtime_r(&now, &tm);
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string cpu_model() {
  std::ifstream f("/proc/cpuinfo");
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t b = line.find_first_not_of(" \t", colon + 1);
      return b != std::string::npos ? line.substr(b) : "";
    }
  }
  return "unknown";
}

/// The SIMD level target_clones actually dispatches to on this host —
/// the highest entry of the ("avx512f", "avx2", "default") clone lists
/// the CPU supports. BENCH_*.json from different machines are only
/// comparable when this matches.
std::string simd_level() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return "avx512f";
  if (__builtin_cpu_supports("avx2")) return "avx2";
#endif
  return "default";
}

}  // namespace

#ifndef ALPS_GIT_SHA
#define ALPS_GIT_SHA "unknown"
#endif
#ifndef ALPS_BUILD_TYPE
#define ALPS_BUILD_TYPE "unknown"
#endif

Reporter::Reporter(const std::string& bench_name, int ranks,
                   std::int64_t problem_size) {
  j_.obj_open().field("bench", bench_name);
  j_.obj_open("meta")
      .field("git_sha", std::string(ALPS_GIT_SHA))
      .field("build_type", std::string(ALPS_BUILD_TYPE))
      .field("date", bench_date());
  if (ranks > 0) j_.field("ranks", ranks);
  if (problem_size > 0) j_.field("problem_size", problem_size);
  j_.obj_open("host")
      .field("cpu", cpu_model())
      .field("cores",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()))
      .field("simd", simd_level())
      .obj_close();
  j_.obj_close();
}

void Reporter::snapshot_obs(const std::string& label) {
  Snapshot s;
  s.label = label;
  s.phases = alps::obs::aggregate_phases();
  s.counters = alps::obs::aggregate_counters();
  s.analysis = alps::obs::analysis::summarize(alps::obs::analysis::step_records());
  alps::obs::analysis::reset_records();
  s.latency = alps::obs::aggregate_hists();
  s.hw = alps::obs::aggregate_hw();
  s.mem_enabled = alps::obs::mem_enabled();
  if (s.mem_enabled) {
    s.mem_scopes = alps::obs::aggregate_mem();
    s.rss = alps::obs::sample_rss();
    s.rss_peak = alps::obs::rss_peak();
  }
  snaps_.push_back(std::move(s));
}

void Reporter::save(const std::string& path) {
  j_.arr_open("obs");
  for (const Snapshot& s : snaps_) {
    j_.obj_open().field("label", s.label);
    j_.arr_open("phases");
    for (const auto& p : s.phases) {
      j_.obj_open()
          .field("name", p.name)
          .field("min_s", p.min_s)
          .field("median_s", p.median_s)
          .field("max_s", p.max_s)
          .field("mean_s", p.mean_s)
          .field("total_s", p.total_s)
          .field("imbalance", p.imbalance)
          .field("ranks", p.ranks)
          .obj_close();
    }
    j_.arr_close();
    j_.obj_open("counters");
    for (const auto& [name, value] : s.counters) j_.field(name.c_str(), value);
    j_.obj_close();
    if (s.analysis.steps > 0) {
      j_.field("analysis_steps", s.analysis.steps);
      j_.field_raw("critical_path",
                   alps::obs::analysis::critical_path_json(s.analysis));
      j_.field_raw("wait_states",
                   alps::obs::analysis::wait_states_json(s.analysis));
    }
    if (!s.latency.empty()) {
      j_.arr_open("latency");
      for (const auto& [name, h] : s.latency) {
        j_.obj_open()
            .field("phase", name)
            .field("count", h.count())
            .field("sum_s", h.sum())
            .field("p50_s", h.quantile(0.5))
            .field("p95_s", h.quantile(0.95))
            .field("p99_s", h.quantile(0.99))
            .field("max_s", h.max())
            .obj_close();
      }
      j_.arr_close();
    }
    if (!s.hw.empty()) {
      j_.arr_open("hw");
      for (const auto& [name, c] : s.hw) {
        j_.obj_open()
            .field("span", name)
            .field("spans", c.spans)
            .field("available", c.available())
            .field("cycles", c.cycles)
            .field("instructions", c.instructions)
            .field("llc_misses", c.llc_misses)
            .field("stalled_cycles", c.stalled_cycles)
            .obj_close();
      }
      j_.arr_close();
    }
    if (s.mem_enabled) {
      std::uint64_t accounted = 0;
      for (const auto& [name, bytes] : s.mem_scopes) accounted += bytes;
      j_.obj_open("memory").field("accounted_bytes", accounted);
      j_.obj_open("scopes");
      for (const auto& [name, bytes] : s.mem_scopes)
        j_.field(name.c_str(), bytes);
      j_.obj_close();
      j_.obj_open("rss").field("available", s.rss.available);
      if (s.rss.available)
        j_.field("rss_bytes", s.rss.rss_bytes)
            .field("hwm_bytes", s.rss.hwm_bytes);
      j_.obj_close();
      if (s.rss_peak.bytes > 0) {
        j_.field("rss_peak_bytes", s.rss_peak.bytes);
        j_.field("rss_peak_phase",
                 std::string(s.rss_peak.phase ? s.rss_peak.phase : ""));
      }
      j_.obj_close();
    }
    j_.obj_close();
  }
  j_.arr_close();
  j_.obj_close();
  j_.save(path);
}

AmrRates calibrate_advection_rates(int init_level, int steps,
                                   int adapt_every) {
  AmrRates rates;
  alps::par::run(1, [&](alps::par::Comm& c) {
    alps::rhea::SimConfig cfg;
    cfg.init_level = init_level;
    cfg.min_level = 2;
    cfg.max_level = init_level + 2;
    cfg.initial_adapt_rounds = 1;
    cfg.adapt_every = adapt_every;
    cfg.energy.kappa = 1e-6;
    cfg.energy.dirichlet_faces = 0b111111;
    cfg.prescribed_velocity = [](const std::array<double, 3>& p, double) {
      return std::array<double, 3>{-(p[1] - 0.5), (p[0] - 0.5), 0.1};
    };
    // In the full application the velocity changes every step, so the
    // SUPG operator is reassembled per step; calibrate with the same
    // per-step cost structure (see paper Sec. V: the transport problem
    // is the AMR stress test inside a time-dependent code).
    cfg.time_dependent_velocity = true;
    alps::rhea::Simulation sim(c, cfg);
    sim.initialize([](const std::array<double, 3>& p) {
      const double dx = p[0] - 0.7, dy = p[1] - 0.5, dz = p[2] - 0.5;
      return std::exp(-60.0 * (dx * dx + dy * dy + dz * dz));
    });
    sim.run(steps);
    const auto& t = sim.timers();
    const double ne = static_cast<double>(sim.global_elements());
    const int na = static_cast<int>(sim.adapt_history().size());
    rates.elements = static_cast<long long>(ne);
    rates.steps = steps;
    rates.adapts = na;
    rates.time_integration = t.time_integration / (ne * steps);
    const double per_adapt = ne * std::max(1, na);
    rates.mark = t.mark_elements / per_adapt;
    rates.coarsen_refine = t.coarsen_refine / per_adapt;
    rates.balance = t.balance / per_adapt;
    rates.interpolate = t.interpolate_fields / per_adapt;
    rates.partition = t.partition / per_adapt;
    rates.extract = t.extract_mesh / per_adapt;
  });
  return rates;
}

}  // namespace bench
