// Sec. VI / Figs. 1 & 11: mantle convection with plastic yielding in a
// regional 8x4x1 domain. AMR resolves the yielding zones several levels
// deeper than the bulk, giving a multiple-orders-of-magnitude element
// reduction vs the uniform mesh at the same finest resolution (paper:
// 19.2M elements across 14 levels vs 34B uniform at level 13 — a >1000x
// reduction, finest cells ~1.5 km).

#include <cmath>

#include "bench_common.hpp"
#include "rhea/simulation.hpp"
#include "stokes/picard.hpp"

using namespace alps;

int main() {
  bench::header("Mantle convection with yielding in the 8x4x1 domain",
                "Sec. VI, Figs. 1 and 11");

  alps::par::run(2, [](par::Comm& c) {
    rhea::SimConfig cfg;
    cfg.conn = forest::Connectivity::brick(8, 4, 1);
    cfg.init_level = 1;
    cfg.min_level = 1;
    cfg.max_level = 4;  // scaled-down analog of the paper's 14 levels
    cfg.initial_adapt_rounds = 2;
    cfg.adapt_every = 2;
    cfg.target_elements = 6000;
    cfg.strain_weight = 0.5;  // track yielding zones in the indicator
    cfg.picard.rayleigh = 1e5;
    cfg.picard.max_iterations = 2;
    cfg.picard.stokes.krylov.max_iterations = 150;
    cfg.picard.stokes.krylov.rtol = 1e-5;
    rhea::YieldingLawOptions yopt;
    yopt.sigma_y = 1.0;
    yopt.eta_min = 1e-4;
    yopt.eta_max = 1e4;
    cfg.law = rhea::three_layer_yielding(yopt);
    rhea::Simulation sim(c, cfg);
    // Cold lithosphere over hot mantle with lateral perturbations that
    // seed downwellings.
    sim.initialize([](const std::array<double, 3>& p) {
      const double conductive = 1.0 - p[2];
      const double pert = 0.08 * std::cos(M_PI * p[0] / 4.0) *
                          std::cos(M_PI * p[1] / 2.0) *
                          std::sin(M_PI * p[2]);
      return std::min(1.0, std::max(0.0, conductive + pert));
    });
    sim.run(4);

    if (c.rank() == 0) std::printf("\nresults:\n");
    const std::int64_t ne = sim.global_elements();
    // Level census.
    std::array<std::int64_t, 20> hist{};
    int finest = 0;
    for (const auto& o : sim.forest().tree().leaves()) {
      hist[static_cast<std::size_t>(o.level)]++;
      finest = std::max(finest, static_cast<int>(o.level));
    }
    for (std::size_t l = 0; l < hist.size(); ++l)
      hist[l] = c.allreduce_sum(hist[l]);
    finest = c.allreduce_max(finest);

    // Viscosity range over the current state (Fig. 11's 4 decades).
    const std::vector<double> eta = stokes::evaluate_viscosity(
        sim.mesh(), sim.forest().connectivity(),
        rhea::three_layer_yielding(yopt), sim.temperature(), sim.solution());
    double emin = 1e300, emax = 0;
    for (double e : eta) {
      emin = std::min(emin, e);
      emax = std::max(emax, e);
    }
    emin = c.allreduce_min(emin);
    emax = c.allreduce_max(emax);

    if (c.rank() == 0) {
      std::printf("  elements: %lld across levels:", static_cast<long long>(ne));
      for (std::size_t l = 0; l < hist.size(); ++l)
        if (hist[l] > 0)
          std::printf(" L%zu:%lld", l, static_cast<long long>(hist[l]));
      std::printf("\n");
      // Uniform-mesh equivalent at the finest level: 32 trees * 8^finest.
      const double uniform = 32.0 * std::pow(8.0, finest);
      std::printf("  uniform mesh at level %d would need %.3g elements -> "
                  "%.0fx reduction\n",
                  finest, uniform, uniform / static_cast<double>(ne));
      // Physical resolution: domain is 23,200 km across = 8 units.
      const double km_per_unit = 23200.0 / 8.0;
      const double finest_km = km_per_unit / std::pow(2.0, finest);
      std::printf("  finest cells: %.0f km (paper at level 14: ~1.5 km)\n",
                  finest_km);
      std::printf("  viscosity range: %.2e .. %.2e (%.1f decades; paper: 4)\n",
                  emin, emax, std::log10(emax / emin));
      std::printf(
          "\nShape check vs paper: refinement concentrates at the yielding "
          "zones and\nthermal boundary layers, the element reduction vs a "
          "uniform mesh at the\nfinest level is orders of magnitude, and "
          "the viscosity field spans the\nfull clamped range.\n");
    }
  });
  return 0;
}
