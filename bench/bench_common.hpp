#pragma once
// Shared helpers for the paper-reproduction benches: fixed-width table
// printing and common workload builders. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md experiment index) and
// prints the paper's reported values alongside for comparison.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "forest/forest.hpp"
#include "mesh/mesh.hpp"
#include "obs/analysis.hpp"
#include "obs/histogram.hpp"
#include "obs/hwcounters.hpp"
#include "obs/mem.hpp"
#include "obs/obs.hpp"
#include "par/runtime.hpp"

namespace bench {

/// Minimal streaming JSON writer for the machine-readable BENCH_*.json
/// result files. Callers are responsible for balanced open/close calls.
class JsonWriter {
 public:
  JsonWriter& obj_open(const char* key = nullptr) { return open(key, '{'); }
  JsonWriter& obj_close() { return close('}'); }
  JsonWriter& arr_open(const char* key = nullptr) { return open(key, '['); }
  JsonWriter& arr_close() { return close(']'); }

  JsonWriter& field(const char* key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return raw(key, buf);
  }
  JsonWriter& field(const char* key, long long v) {
    return raw(key, std::to_string(v));
  }
  JsonWriter& field(const char* key, std::int64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonWriter& field(const char* key, int v) { return raw(key, std::to_string(v)); }
  JsonWriter& field(const char* key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonWriter& field(const char* key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonWriter& field(const char* key, const std::string& v) {
    return raw(key, '"' + v + '"');  // bench strings need no escaping
  }
  /// Pre-serialized JSON value emitted verbatim (analysis blocks).
  JsonWriter& field_raw(const char* key, const std::string& v) {
    return raw(key, v);
  }

  const std::string& str() const { return out_; }

  void save(const std::string& path) const {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("JsonWriter: cannot open " + path);
    f << out_ << '\n';
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  JsonWriter& open(const char* key, char c) {
    comma();
    if (key) out_ += '"' + std::string(key) + "\": ";
    out_ += c;
    fresh_ = true;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    fresh_ = false;
    return *this;
  }
  JsonWriter& raw(const char* key, const std::string& v) {
    comma();
    out_ += '"' + std::string(key) + "\": " + v;
    return *this;
  }
  void comma() {
    if (!fresh_ && !out_.empty()) out_ += ", ";
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

/// Append the communication counters as a nested object.
inline void json_comm_stats(JsonWriter& j, const alps::par::CommStats& s) {
  j.obj_open("comm")
      .field("p2p_messages", s.p2p_messages)
      .field("p2p_bytes", s.p2p_bytes)
      .field("allreduce_calls", s.allreduce_calls)
      .field("allreduce_bytes", s.allreduce_bytes)
      .field("allgather_calls", s.allgather_calls)
      .field("allgather_bytes", s.allgather_bytes)
      .field("alltoall_calls", s.alltoall_calls)
      .field("alltoall_bytes", s.alltoall_bytes)
      .field("barrier_calls", s.barrier_calls)
      .obj_close();
}

/// Every bench emits its BENCH_*.json through one Reporter so all result
/// files share a schema: the bench's own fields, plus an "obs" array of
/// labeled snapshots (cross-rank phase breakdowns + merged counters) taken
/// after each par::run of interest. Open the top-level object in the
/// constructor, write bench fields through json(), snapshot after runs,
/// and save() once at the end — save closes the object.
class Reporter {
 public:
  /// Opens the top-level object and embeds a "meta" block (git SHA and
  /// build type captured at configure time, wall-clock date — overridable
  /// via ALPS_BENCH_DATE for reproducible CI artifacts — plus ranks /
  /// problem_size when the bench passes them) so every BENCH_*.json is
  /// attributable to the build that produced it.
  explicit Reporter(const std::string& bench_name, int ranks = 0,
                    std::int64_t problem_size = 0);

  JsonWriter& json() { return j_; }

  /// Capture the obs aggregates of the most recent par::run under `label`:
  /// phase breakdowns, merged counters, the wait-state / critical-path
  /// roll-up of every analyze_step the run performed, cross-rank latency
  /// histograms (per-phase count / sum / p50 / p95 / p99 / max rows), and
  /// hardware-counter aggregates. The analysis step records are consumed
  /// (reset) so the next snapshot only sees its own run.
  void snapshot_obs(const std::string& label);

  /// Close the top-level object (appending the obs snapshots) and write.
  void save(const std::string& path);

 private:
  struct Snapshot {
    std::string label;
    std::vector<alps::obs::PhaseBreakdown> phases;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    alps::obs::analysis::RunSummary analysis;
    // Cross-rank merged duration histograms (obs/histogram.hpp): one
    // percentile row per recorded phase in the JSON output.
    std::vector<std::pair<std::string, alps::obs::Histogram>> latency;
    std::vector<std::pair<std::string, alps::obs::HwCounts>> hw;
    // Memory accounting of the run (obs/mem.hpp): per-scope bytes summed
    // over ranks, plus the process RSS sample and cadence-sampled peak.
    bool mem_enabled = false;
    std::vector<std::pair<std::string, std::uint64_t>> mem_scopes;
    alps::obs::RssSample rss;
    alps::obs::RssPeak rss_peak;
  };
  JsonWriter j_;
  std::vector<Snapshot> snaps_;
};

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("NOTE: %s\n", text.c_str()); }

/// Refine toward a Gaussian front to produce a realistically adapted mesh.
inline void adapt_toward_point(alps::par::Comm& comm, alps::forest::Forest& f,
                               const std::array<double, 3>& center, int rounds,
                               int max_level) {
  using alps::octree::octant_len;
  for (int round = 0; round < rounds; ++round) {
    const auto& conn = f.connectivity();
    std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
    for (std::size_t e = 0; e < flags.size(); ++e) {
      const auto& o = f.tree().leaves()[e];
      const auto h = octant_len(o.level);
      const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
      const double d2 = (p[0] - center[0]) * (p[0] - center[0]) +
                        (p[1] - center[1]) * (p[1] - center[1]) +
                        (p[2] - center[2]) * (p[2] - center[2]);
      if (d2 < 0.15 && o.level < max_level) flags[e] = 1;
    }
    f.tree().adapt(flags, 0, max_level);
    f.tree().update_ranges(comm);
  }
  f.balance(comm);
  f.partition(comm);
}

/// Measured per-element host rates of the advection-AMR pipeline phases,
/// obtained from a real single-rank calibration run. These feed the
/// performance model (src/perf) that synthesizes the paper's large-P
/// curves; see DESIGN.md (substitutions).
struct AmrRates {
  double time_integration = 0;  // s / element / time step
  double mark = 0;              // s / element / adaptation
  double coarsen_refine = 0;
  double balance = 0;
  double interpolate = 0;
  double partition = 0;
  double extract = 0;
  long long elements = 0;
  int steps = 0;
  int adapts = 0;
};

AmrRates calibrate_advection_rates(int init_level = 4, int steps = 24,
                                   int adapt_every = 8);

}  // namespace bench
