#pragma once
// Shared helpers for the paper-reproduction benches: fixed-width table
// printing and common workload builders. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md experiment index) and
// prints the paper's reported values alongside for comparison.

#include <cstdio>
#include <string>
#include <vector>

#include "forest/forest.hpp"
#include "mesh/mesh.hpp"
#include "par/runtime.hpp"

namespace bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("NOTE: %s\n", text.c_str()); }

/// Refine toward a Gaussian front to produce a realistically adapted mesh.
inline void adapt_toward_point(alps::par::Comm& comm, alps::forest::Forest& f,
                               const std::array<double, 3>& center, int rounds,
                               int max_level) {
  using alps::octree::octant_len;
  for (int round = 0; round < rounds; ++round) {
    const auto& conn = f.connectivity();
    std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
    for (std::size_t e = 0; e < flags.size(); ++e) {
      const auto& o = f.tree().leaves()[e];
      const auto h = octant_len(o.level);
      const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
      const double d2 = (p[0] - center[0]) * (p[0] - center[0]) +
                        (p[1] - center[1]) * (p[1] - center[1]) +
                        (p[2] - center[2]) * (p[2] - center[2]);
      if (d2 < 0.15 && o.level < max_level) flags[e] = 1;
    }
    f.tree().adapt(flags, 0, max_level);
    f.tree().update_ranges(comm);
  }
  f.balance(comm);
  f.partition(comm);
}

/// Measured per-element host rates of the advection-AMR pipeline phases,
/// obtained from a real single-rank calibration run. These feed the
/// performance model (src/perf) that synthesizes the paper's large-P
/// curves; see DESIGN.md (substitutions).
struct AmrRates {
  double time_integration = 0;  // s / element / time step
  double mark = 0;              // s / element / adaptation
  double coarsen_refine = 0;
  double balance = 0;
  double interpolate = 0;
  double partition = 0;
  double extract = 0;
  long long elements = 0;
  int steps = 0;
  int adapts = 0;
};

AmrRates calibrate_advection_rates(int init_level = 4, int steps = 24,
                                   int adapt_every = 8);

}  // namespace bench
