// AMG setup-cost scaling: per-octree-level distributed hierarchy setup on
// the adapted variable-viscosity Poisson operator, normalized to
// nanoseconds per fine-grid nonzero. With the two-pass Galerkin product
// the setup is linear in nnz, so setup_ns_per_nnz must stay flat as the
// problem grows (scripts/check_bench.py gates CI on the highest-vs-lowest
// level ratio). Also measures the numeric-only hierarchy refresh
// (DistAmg::refresh_numeric), the path Picard iterations and non-adapting
// timesteps take, which must be a small fraction of the full setup.
// Results are emitted to BENCH_amg_setup.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "amg/dist_amg.hpp"
#include "bench_common.hpp"
#include "fem/operators.hpp"
#include "la/dist_csr.hpp"

using namespace alps;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

fem::ElementOperator poisson_operator(const forest::Forest& f,
                                      const mesh::Mesh& m) {
  return fem::build_scalar_laplace(
      m, f.connectivity(),
      [](const std::array<double, 3>& p) {
        return std::exp(std::log(1e4) * (p[2] - 0.5));  // 1e4 contrast
      },
      0b111111);
}

}  // namespace

int main(int argc, char** argv) {
  const int max_level = argc > 1 ? std::atoi(argv[1]) : 5;
  bench::header(
      "Distributed AMG setup cost per fine-grid nonzero (linear-time "
      "two-pass Galerkin) and numeric-only hierarchy refresh",
      "setup scaling");
  std::printf("%-8s %6s %10s %12s %10s %14s %10s %10s\n", "level", "ranks",
              "#dof", "fine nnz", "setup(s)", "setup ns/nnz", "refresh(s)",
              "refr/setup");

  bench::Reporter report("amg_setup");
  bench::JsonWriter& json = report.json();
  json.arr_open("cases");

  for (int level = 3; level <= max_level; ++level) {
    const int p = std::min(4, 1 << (level - 2));
    double setup_s = 0, refresh_s = 0;
    std::int64_t n_dof = 0, fine_nnz = 0;
    const par::CommStats cs = alps::par::run(p, [&](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      fem::ElementOperator op = poisson_operator(f, m);
      la::DistCsr a = op.assemble_dist(c);
      const std::int64_t nnz = c.allreduce_sum(a.local_nnz());
      double t0 = now_s();
      amg::DistAmg amg(c, std::move(a), {});
      const double ts = now_s() - t0;
      // The numeric refresh path: re-assemble (viscosity would have
      // changed) and replay the cached RAP plans.
      la::DistCsr a2 = op.assemble_dist(c);
      t0 = now_s();
      amg.refresh_numeric(c, std::move(a2));
      const double tr = now_s() - t0;
      if (c.rank() == 0) {
        n_dof = amg.finest().global_rows();
        fine_nnz = nnz;
        setup_s = ts;
        refresh_s = tr;
      }
    });
    const double ns_per_nnz =
        1e9 * setup_s / static_cast<double>(std::max<std::int64_t>(1, fine_nnz));
    const double refresh_ratio = refresh_s / std::max(1e-12, setup_s);
    std::printf("L%-7d %6d %10lld %12lld %10.3f %14.1f %10.3f %10.3f\n",
                level, p, static_cast<long long>(n_dof),
                static_cast<long long>(fine_nnz), setup_s, ns_per_nnz,
                refresh_s, refresh_ratio);
    json.obj_open()
        .field("level", level)
        .field("ranks", p)
        .field("n_dof", n_dof)
        .field("fine_nnz", fine_nnz)
        .field("setup_s", setup_s)
        .field("setup_ns_per_nnz", ns_per_nnz)
        .field("refresh_s", refresh_s)
        .field("refresh_over_setup", refresh_ratio);
    bench::json_comm_stats(json, cs);
    json.obj_close();
    report.snapshot_obs("amg_setup_level" + std::to_string(level));
  }

  json.arr_close();
  report.save("BENCH_amg_setup.json");

  std::printf(
      "\nShape check: setup_ns_per_nnz flat across levels (linear-time "
      "setup);\nrefresh a small fraction of setup (the amortized path "
      "between mesh\nadaptations). scripts/check_bench.py enforces the "
      "flatness ratio in CI.\n");
  return 0;
}
