// AMR pipeline overhead: hashed vs per-corner reference mesh extraction
// across refinement levels at a fixed rank count, the incremental
// (Correspondence-driven) re-extraction after a local adaptation that
// does not repartition, and the AMR share of the full step time in a
// short transport run. The paper's claim is that the AMR machinery stays
// a small fraction of solve time (Fig. 5 / Fig. 10); the extraction
// rewrite is the enabling optimization, so scripts/check_bench.py gates
// CI on the hashed-vs-reference speedup at the largest level and on a
// strictly positive element-reuse fraction whenever no repartition
// happened. Results go to BENCH_amr.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "bench_common.hpp"
#include "mesh/ghost.hpp"
#include "rhea/simulation.hpp"

using namespace alps;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Cross-rank time of one collective region: everyone enters together
/// (barrier), the slowest rank defines the cost.
template <class Fn>
double timed(par::Comm& c, Fn&& fn) {
  c.barrier();
  const double t0 = now_s();
  fn();
  return c.allreduce_max(now_s() - t0);
}

/// Refine a thin shell around `center` that the initial adaptation did
/// not touch, WITHOUT repartitioning afterwards — the situation the
/// incremental extraction is built for (ownership ranges unchanged).
void adapt_local_front(par::Comm& c, forest::Forest& f,
                       const std::array<double, 3>& center, int max_level) {
  using octree::octant_len;
  const auto& conn = f.connectivity();
  std::vector<std::int8_t> flags(f.tree().leaves().size(), 0);
  for (std::size_t e = 0; e < flags.size(); ++e) {
    const auto& o = f.tree().leaves()[e];
    const auto h = octant_len(o.level);
    const auto p = conn.map_point(o.tree, o.x + h / 2, o.y + h / 2, o.z + h / 2);
    const double d2 = (p[0] - center[0]) * (p[0] - center[0]) +
                      (p[1] - center[1]) * (p[1] - center[1]) +
                      (p[2] - center[2]) * (p[2] - center[2]);
    if (d2 < 0.05 && o.level < max_level) flags[e] = 1;
  }
  f.tree().adapt(flags, 0, max_level);
  f.balance(c);  // no partition: range_begins() stays fixed
}

}  // namespace

int main(int argc, char** argv) {
  const int max_level = argc > 1 ? std::atoi(argv[1]) : 5;
  const int p = 4;
  const int reps = 3;
  bench::header(
      "Mesh extraction cost: hashed node table vs per-corner reference, "
      "and incremental re-extraction after a non-repartitioning adapt",
      "AMR overhead (Fig. 5 / Fig. 10: AMR a small fraction of solve)");
  std::printf("%-8s %6s %10s %12s %12s %9s %12s %8s\n", "level", "ranks",
              "#elem", "reference", "hashed", "speedup", "incremental",
              "reuse");

  bench::Reporter report("amr", p);
  bench::JsonWriter& json = report.json();
  json.arr_open("cases");

  for (int level = 3; level <= max_level; ++level) {
    double ref_s = 0, hashed_s = 0, incr_s = 0, reuse_frac = 0;
    std::int64_t n_elements = 0;
    bool fallback = false, fallback_after_partition = false;
    alps::par::run(p, [&](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 1, level + 1);

      // The ghost layer is an input both paths share (hoisted out of
      // extraction since this PR), so it is computed outside the timers.
      const std::vector<octree::Octant> ghosts =
          mesh::ghost_layer(c, f.tree(), f.connectivity());

      double best_ref = 1e30, best_hashed = 1e30;
      mesh::Mesh prev;
      for (int r = 0; r < reps; ++r) {
        best_ref = std::min(
            best_ref, timed(c, [&] {
              mesh::Mesh m = mesh::extract_mesh_reference(c, f, ghosts);
            }));
        best_hashed = std::min(best_hashed, timed(c, [&] {
                                 prev = mesh::extract_mesh(c, f, ghosts);
                               }));
      }

      // Incremental re-extraction: a thin front refines locally, no
      // repartition, so untouched elements keep their constraint rows.
      adapt_local_front(c, f, {0.2, 0.7, 0.4}, level + 1);
      mesh::ExtractStats stats;
      double best_incr = 1e30;
      for (int r = 0; r < reps; ++r) {
        std::vector<octree::Octant> g2 =
            mesh::ghost_layer(c, f.tree(), f.connectivity());
        mesh::Mesh next;
        best_incr = std::min(best_incr, timed(c, [&] {
                               next = mesh::extract_mesh_incremental(
                                   c, f, std::move(g2), prev, &stats);
                             }));
      }
      const std::int64_t reused = c.allreduce_sum(stats.reused);
      const std::int64_t recomputed = c.allreduce_sum(stats.recomputed);
      const bool fell_back = c.allreduce_or(stats.fallback);

      // After a repartition the ownership ranges moved, so incremental
      // extraction must detect it and fall back to a full rebuild.
      f.partition(c);
      std::vector<octree::Octant> g3 =
          mesh::ghost_layer(c, f.tree(), f.connectivity());
      mesh::ExtractStats post;
      mesh::Mesh after =
          mesh::extract_mesh_incremental(c, f, std::move(g3), prev, &post);
      const bool post_fellback = c.allreduce_or(post.fallback);

      const std::int64_t ne = c.allreduce_sum(f.tree().num_local());
      if (c.rank() == 0) {
        ref_s = best_ref;
        hashed_s = best_hashed;
        incr_s = best_incr;
        reuse_frac = reused + recomputed > 0
                         ? static_cast<double>(reused) /
                               static_cast<double>(reused + recomputed)
                         : 0.0;
        fallback = fell_back;
        fallback_after_partition = post_fellback;
        n_elements = ne;
      }
    });

    const double speedup = ref_s / std::max(1e-12, hashed_s);
    std::printf("L%-7d %6d %10lld %10.1fms %10.1fms %8.2fx %10.1fms %7.1f%%\n",
                level, p, static_cast<long long>(n_elements), ref_s * 1e3,
                hashed_s * 1e3, speedup, incr_s * 1e3, reuse_frac * 1e2);
    if (!fallback_after_partition)
      std::printf("WARNING: incremental extraction did NOT fall back after "
                  "a repartition at level %d\n", level);

    json.obj_open()
        .field("level", level)
        .field("ranks", p)
        .field("elements", n_elements)
        .field("reference_s", ref_s)
        .field("hashed_s", hashed_s)
        .field("extract_speedup", speedup)
        .field("incremental_s", incr_s)
        .field("reuse_fraction", reuse_frac)
        .field("repartitioned", false)
        .field("fallback", fallback)
        .field("fallback_after_partition", fallback_after_partition)
        .obj_close();
    report.snapshot_obs("amr_level" + std::to_string(level));
  }
  json.arr_close();

  // AMR share of the full step time: a short transport-only run with a
  // partition threshold, so balanced adaptations skip PARTITIONTREE and
  // take the incremental extraction path.
  {
    double amr_s = 0, step_s = 0;
    std::int64_t reused = 0, recomputed = 0;
    alps::par::run(p, [&](par::Comm& c) {
      rhea::SimConfig cfg;
      cfg.init_level = 3;
      cfg.min_level = 2;
      cfg.max_level = 5;
      cfg.initial_adapt_rounds = 1;
      cfg.adapt_every = 2;
      cfg.partition_threshold = 1.5;
      cfg.prescribed_velocity = [](const std::array<double, 3>& x, double) {
        return std::array<double, 3>{0.5 - x[1], x[0] - 0.5, 0.05};
      };
      rhea::Simulation sim(c, cfg);
      sim.initialize([](const std::array<double, 3>& x) {
        const double dx = x[0] - 0.3, dy = x[1] - 0.5, dz = x[2] - 0.5;
        return std::exp(-40.0 * (dx * dx + dy * dy + dz * dz));
      });
      sim.run(8);
      const rhea::PhaseTimers t = sim.timers();
      const std::int64_t ru = c.allreduce_sum(sim.last_extract().reused);
      const std::int64_t rc = c.allreduce_sum(sim.last_extract().recomputed);
      if (c.rank() == 0) {
        amr_s = t.amr_total();
        step_s = t.total();
        reused = ru;
        recomputed = rc;
      }
    });
    const double share = step_s > 0 ? amr_s / step_s : 0.0;
    std::printf("\nAMR share of step time (transport run, threshold-gated "
                "partition): %.3fs of %.3fs = %.1f%%\n",
                amr_s, step_s, share * 1e2);
    std::printf("last adaptation's extraction: %lld reused / %lld recomputed "
                "elements\n", static_cast<long long>(reused),
                static_cast<long long>(recomputed));
    json.obj_open("amr_share")
        .field("amr_s", amr_s)
        .field("step_s", step_s)
        .field("share", share)
        .field("last_extract_reused", reused)
        .field("last_extract_recomputed", recomputed)
        .obj_close();
  }

  report.save("BENCH_amr.json");
  std::printf(
      "\nShape check: hashed extraction beats the per-corner reference "
      "(>= 2x at\nthe largest level) and non-repartitioning adapts reuse a "
      "positive fraction\nof elements. scripts/check_bench.py enforces both "
      "in CI.\n");
  return 0;
}
