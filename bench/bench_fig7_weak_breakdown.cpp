// Fig. 7: isogranular (weak) scalability of advection-diffusion AMR at
// ~131,000 elements/core from 1 to 62,464 cores: runtime percentage
// breakdown into the AMR functions vs numerical time integration (top),
// and parallel efficiency (bottom). Paper: AMR stays <= ~11% of the total
// and efficiency stays above 50%.
//
// Measured per-element host rates + Ranger communication model, per
// DESIGN.md. The per-phase communication structure mirrors the real
// algorithms: MarkElements = threshold-iteration allreduces, BalanceTree =
// one aggregated alltoall round per refinement level, PartitionTree =
// bulk one-to-one data movement, ExtractMesh = ghost + numbering
// exchange, time integration = face ghost exchange per RK stage.

#include <cmath>

#include "bench_common.hpp"
#include "perf/model.hpp"

using namespace alps;

int main() {
  bench::header("Weak scaling breakdown, advection-diffusion AMR",
                "Fig. 7 (paper: AMR <= 11% of end-to-end time at 62,464 "
                "cores; parallel efficiency >= 50%)");
  const perf::MachineModel m = perf::MachineModel::ranger();
  bench::note("Machine model: " + m.name);
  const bench::AmrRates r = bench::calibrate_advection_rates(5, 16, 8);
  const double npc = 131000.0;  // paper granularity
  const int adapt_every = 32;

  std::printf("\n%8s %8s %8s %8s %8s %8s %8s %8s %10s %6s\n", "cores",
              "TimeInt%", "Mark%", "Coars/R%", "Balance%", "Partit%",
              "Extract%", "Interp%", "AMR-total%", "eff");
  double t1 = 0.0;
  for (std::int64_t p = 1; p <= 62464; p *= 4) {
    const double n = npc * static_cast<double>(p);
    // Per 32-step adaptation window, per phase; the base run uses one
    // core per node, so memory contention ramps in over the first 16x.
    const double cf = perf::contention_factor(m, p, 1);
    // Per-step synchronization straggling: OS noise and AMR imbalance
    // amplify with the number of synchronizing cores (~1.5%/doubling).
    const double straggle =
        1.0 + 0.015 * std::log2(static_cast<double>(std::max<std::int64_t>(p, 1)));
    const auto w = [&](double rate) {
      return perf::to_model_seconds(m, rate) * n * cf;
    };
    const double ghost =
        perf::ghost_bytes_per_rank(static_cast<std::int64_t>(npc), 32.0);
    perf::PhaseCost ti{"ti", w(r.time_integration) * adapt_every, adapt_every,
                       8, 12 * adapt_every, ghost * adapt_every};
    perf::PhaseCost mark{"mark", w(r.mark), 40, 16, 0, 0.0};
    perf::PhaseCost coar{"coarsen", w(r.coarsen_refine), 0, 8, 0, 0.0};
    perf::PhaseCost bal{"balance", w(r.balance), 10, 8, 10 * 18,
                        10.0 * 18.0 * 20.0};
    perf::PhaseCost part{"partition", w(r.partition), 2, 8, 8,
                         npc * 8.0 * 8.0 * 0.5};
    perf::PhaseCost extr{"extract", w(r.extract), 3, 8, 26, ghost * 2};
    perf::PhaseCost intp{"interp", w(r.interpolate), 0, 8, 0, 0.0};
    const double t_ti = perf::phase_time(m, ti, p) * straggle;
    const double t_mark = perf::phase_time(m, mark, p) * straggle;
    const double t_coar = perf::phase_time(m, coar, p) * straggle;
    const double t_bal = perf::phase_time(m, bal, p) * straggle;
    const double t_part = perf::phase_time(m, part, p) * straggle;
    const double t_extr = perf::phase_time(m, extr, p) * straggle;
    const double t_intp = perf::phase_time(m, intp, p) * straggle;
    const double total =
        t_ti + t_mark + t_coar + t_bal + t_part + t_extr + t_intp;
    if (p == 1) t1 = total;
    const double amr = total - t_ti;
    std::printf("%8lld %8.1f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %10.1f %6.2f\n",
                static_cast<long long>(p), 100.0 * t_ti / total,
                100.0 * t_mark / total, 100.0 * t_coar / total,
                100.0 * t_bal / total, 100.0 * t_part / total,
                100.0 * t_extr / total, 100.0 * t_intp / total,
                100.0 * amr / total, t1 / total);
  }
  std::printf(
      "\nShape check vs paper: time integration dominates throughout, "
      "ExtractMesh\nis the most expensive AMR function, the total AMR "
      "share grows slowly with\ncore count but stays a small fraction, "
      "and efficiency decays gently (paper:\n>= 50%% at 62K cores; exact "
      "numbers depend on the network model).\n");
  return 0;
}
