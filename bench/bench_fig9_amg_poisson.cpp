// Fig. 9: AMG preconditioner cost — one setup plus 160 V-cycles — for
// (a) the variable-viscosity Poisson operator on an adapted hexahedral
// finite element mesh (the Stokes preconditioner's building block) vs
// (b) the constant-coefficient Laplacian on a regular grid with a 7-point
// stencil (the most AMG-friendly case). Paper: the Laplace case is
// cheaper but scales no better, so the variable-viscosity case cannot be
// expected to improve.
//
// Additionally measures the distributed hierarchy (owned-row DistCsr +
// DistAmg) at P = 4 against the replicated baseline: per-rank peak matrix
// storage must shrink with P (the memory-scalability claim of Sec. III).
// Results are emitted to BENCH_amg.json.

#include <chrono>
#include <cmath>

#include "amg/amg.hpp"
#include "amg/dist_amg.hpp"
#include "bench_common.hpp"
#include "fem/operators.hpp"
#include "la/dist_csr.hpp"
#include "perf/model.hpp"

using namespace alps;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

la::Csr laplace_7pt(std::int64_t n) {
  const auto id = [n](std::int64_t i, std::int64_t j, std::int64_t k) {
    return (k * n + j) * n + i;
  };
  std::vector<la::Triplet> t;
  for (std::int64_t k = 0; k < n; ++k)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t r = id(i, j, k);
        double diag = 6.0;
        const auto add = [&](std::int64_t ii, std::int64_t jj, std::int64_t kk) {
          if (ii < 0 || jj < 0 || kk < 0 || ii >= n || jj >= n || kk >= n)
            return;
          t.push_back({r, id(ii, jj, kk), -1.0});
        };
        add(i - 1, j, k);
        add(i + 1, j, k);
        add(i, j - 1, k);
        add(i, j + 1, k);
        add(i, j, k - 1);
        add(i, j, k + 1);
        t.push_back({r, r, diag});
      }
  return la::Csr::from_triplets(n * n * n, n * n * n, std::move(t));
}

fem::ElementOperator poisson_operator(const forest::Forest& f,
                                      const mesh::Mesh& m) {
  return fem::build_scalar_laplace(
      m, f.connectivity(),
      [](const std::array<double, 3>& p) {
        return std::exp(std::log(1e4) * (p[2] - 0.5));  // 1e4 contrast
      },
      0b111111);
}

struct Cost {
  double setup = 0, cycles = 0;
  std::int64_t n = 0;
  std::int64_t hier_nnz = 0;  // total matrix storage across all levels
  double op_complexity = 0;
};

Cost run_case(la::Csr a) {
  Cost c;
  c.n = a.rows();
  double t0 = now_s();
  amg::Amg amg(std::move(a), {});
  c.setup = now_s() - t0;
  c.op_complexity = amg.operator_complexity();
  for (const amg::LevelStats& s : amg.level_stats()) c.hier_nnz += s.nnz;
  std::vector<double> b(static_cast<std::size_t>(c.n), 1.0);
  std::vector<double> x(static_cast<std::size_t>(c.n), 0.0);
  t0 = now_s();
  for (int k = 0; k < 160; ++k) {
    std::fill(x.begin(), x.end(), 0.0);
    amg.vcycle(b, x);
  }
  c.cycles = now_s() - t0;
  return c;
}

void json_case(bench::JsonWriter& j, const std::string& name, int level,
               int ranks, const Cost& c, std::int64_t per_rank_nnz) {
  j.obj_open()
      .field("name", name)
      .field("level", level)
      .field("ranks", ranks)
      .field("n_dof", c.n)
      .field("setup_s", c.setup)
      .field("cycles160_s", c.cycles)
      .field("op_complexity", c.op_complexity)
      .field("per_rank_nnz", per_rank_nnz)
      .obj_close();
}

}  // namespace

int main() {
  bench::header("AMG setup + 160 V-cycles: variable-viscosity FEM Poisson "
                "on an adapted mesh vs 7-point Laplace on a regular grid",
                "Fig. 9");
  std::printf("%-34s %10s %10s %12s %8s %14s\n", "operator", "#dof",
              "setup(s)", "160 cyc (s)", "op-cx", "perrank-nnz");

  bench::Reporter report("fig9_amg_poisson");
  bench::JsonWriter& json = report.json();
  json.arr_open("cases");
  bool all_pass = true;

  for (int level : {3, 4}) {
    // (a) variable-viscosity FEM Poisson, replicated baseline (P = 1:
    // every rank would store the whole hierarchy, so per-rank storage is
    // the full hier_nnz).
    Cost fem_cost;
    alps::par::run(1, [&](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      fem::ElementOperator op = poisson_operator(f, m);
      fem_cost = run_case(op.assemble_global(c));
    });
    std::printf("%-34s %10lld %10.3f %12.3f %8.2f %14lld\n",
                ("var-visc Poisson, octree L" + std::to_string(level) +
                 " (repl)").c_str(),
                static_cast<long long>(fem_cost.n), fem_cost.setup,
                fem_cost.cycles, fem_cost.op_complexity,
                static_cast<long long>(fem_cost.hier_nnz));
    json_case(json, "var_visc_poisson_replicated", level, 1, fem_cost,
              fem_cost.hier_nnz);

    // (a') the same operator through the distributed stack at P = 4:
    // owned-row assembly, DistAmg hierarchy, per-rank peak storage.
    const int p = 4;
    Cost dist_cost;
    std::int64_t peak_nnz = 0;
    int dist_levels = 0;
    const par::CommStats cs = alps::par::run(p, [&](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      fem::ElementOperator op = poisson_operator(f, m);
      double t0 = now_s();
      amg::DistAmg amg(c, op.assemble_dist(c), {});
      const double setup = now_s() - t0;
      const std::int64_t nown = amg.finest().owned_rows();
      std::vector<double> b(static_cast<std::size_t>(nown), 1.0);
      std::vector<double> x(static_cast<std::size_t>(nown), 0.0);
      t0 = now_s();
      for (int k = 0; k < 160; ++k) {
        std::fill(x.begin(), x.end(), 0.0);
        amg.vcycle(c, b, x);
      }
      const double cyc = now_s() - t0;
      const std::int64_t peak = c.allreduce_max(amg.local_nnz());
      if (c.rank() == 0) {
        dist_cost.n = amg.finest().global_rows();
        dist_cost.setup = setup;
        dist_cost.cycles = cyc;
        dist_cost.op_complexity = amg.operator_complexity();
        dist_cost.hier_nnz = amg.local_nnz();
        peak_nnz = peak;
        dist_levels = amg.num_levels();
      }
    });
    const double ratio = static_cast<double>(peak_nnz) /
                         static_cast<double>(fem_cost.hier_nnz);
    const bool pass = ratio < 0.6;
    all_pass = all_pass && pass;
    std::printf("%-34s %10lld %10.3f %12.3f %8.2f %14lld\n",
                ("var-visc Poisson, octree L" + std::to_string(level) +
                 " (P=4)").c_str(),
                static_cast<long long>(dist_cost.n), dist_cost.setup,
                dist_cost.cycles, dist_cost.op_complexity,
                static_cast<long long>(peak_nnz));
    std::printf("    per-rank peak nnz ratio vs replicated: %.3f (< 0.6: %s)\n",
                ratio, pass ? "PASS" : "FAIL");
    json.obj_open()
        .field("name", std::string("var_visc_poisson_distributed"))
        .field("level", level)
        .field("ranks", p)
        .field("n_dof", dist_cost.n)
        .field("setup_s", dist_cost.setup)
        .field("cycles160_s", dist_cost.cycles)
        .field("op_complexity", dist_cost.op_complexity)
        .field("amg_levels", dist_levels)
        .field("per_rank_peak_nnz", peak_nnz)
        .field("replicated_per_rank_nnz", fem_cost.hier_nnz)
        .field("nnz_ratio_vs_replicated", ratio)
        .field("pass_lt_0p6", pass);
    bench::json_comm_stats(json, cs);
    json.obj_close();
    report.snapshot_obs("var_visc_poisson_distributed_level" +
                        std::to_string(level));

    // (b) matched-size regular-grid 7-point Laplacian (serial reference).
    const std::int64_t side = static_cast<std::int64_t>(
        std::lround(std::cbrt(static_cast<double>(fem_cost.n))));
    Cost lap = run_case(laplace_7pt(side));
    std::printf("%-34s %10lld %10.3f %12.3f %8.2f %14lld\n",
                ("7-point Laplace, " + std::to_string(side) + "^3 grid").c_str(),
                static_cast<long long>(lap.n), lap.setup, lap.cycles,
                lap.op_complexity, static_cast<long long>(lap.hier_nnz));
    json_case(json, "laplace_7pt_replicated", level, 1, lap, lap.hier_nnz);
  }

  json.arr_close().field("per_rank_nnz_criterion_pass", all_pass);
  report.save("BENCH_amg.json");

  std::printf(
      "\nShape check vs paper: the regular-grid Laplacian is cheaper per "
      "dof\n(simpler stencil, lower operator complexity) but both cases "
      "grow the same\nway with size — matching the paper's conclusion "
      "that the variable-viscosity\npreconditioner cannot be expected to "
      "scale better than plain Laplace AMG.\nThe distributed hierarchy "
      "keeps per-rank storage at roughly 1/P of the\nreplicated baseline, "
      "which is what lets the preconditioner weak-scale.\n");
  return all_pass ? 0 : 1;
}
