// Fig. 9: AMG preconditioner cost — one setup plus 160 V-cycles — for
// (a) the variable-viscosity Poisson operator on an adapted hexahedral
// finite element mesh (the Stokes preconditioner's building block) vs
// (b) the constant-coefficient Laplacian on a regular grid with a 7-point
// stencil (the most AMG-friendly case). Paper: the Laplace case is
// cheaper but scales no better, so the variable-viscosity case cannot be
// expected to improve.

#include <chrono>
#include <cmath>

#include "amg/amg.hpp"
#include "bench_common.hpp"
#include "fem/operators.hpp"
#include "perf/model.hpp"

using namespace alps;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

la::Csr laplace_7pt(std::int64_t n) {
  const auto id = [n](std::int64_t i, std::int64_t j, std::int64_t k) {
    return (k * n + j) * n + i;
  };
  std::vector<la::Triplet> t;
  for (std::int64_t k = 0; k < n; ++k)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t r = id(i, j, k);
        double diag = 6.0;
        const auto add = [&](std::int64_t ii, std::int64_t jj, std::int64_t kk) {
          if (ii < 0 || jj < 0 || kk < 0 || ii >= n || jj >= n || kk >= n)
            return;
          t.push_back({r, id(ii, jj, kk), -1.0});
        };
        add(i - 1, j, k);
        add(i + 1, j, k);
        add(i, j - 1, k);
        add(i, j + 1, k);
        add(i, j, k - 1);
        add(i, j, k + 1);
        t.push_back({r, r, diag});
      }
  return la::Csr::from_triplets(n * n * n, n * n * n, std::move(t));
}

struct Cost {
  double setup = 0, cycles = 0;
  std::int64_t n = 0;
  double op_complexity = 0;
};

Cost run_case(la::Csr a) {
  Cost c;
  c.n = a.rows();
  double t0 = now_s();
  amg::Amg amg(std::move(a), {});
  c.setup = now_s() - t0;
  c.op_complexity = amg.operator_complexity();
  std::vector<double> b(static_cast<std::size_t>(c.n), 1.0);
  std::vector<double> x(static_cast<std::size_t>(c.n), 0.0);
  t0 = now_s();
  for (int k = 0; k < 160; ++k) {
    std::fill(x.begin(), x.end(), 0.0);
    amg.vcycle(b, x);
  }
  c.cycles = now_s() - t0;
  return c;
}

}  // namespace

int main() {
  bench::header("AMG setup + 160 V-cycles: variable-viscosity FEM Poisson "
                "on an adapted mesh vs 7-point Laplace on a regular grid",
                "Fig. 9");
  std::printf("%-34s %10s %10s %12s %8s\n", "operator", "#dof", "setup(s)",
              "160 cyc (s)", "op-cx");

  for (int level : {3, 4}) {
    // (a) variable-viscosity FEM Poisson on an adapted octree mesh.
    Cost fem_cost;
    alps::par::run(1, [&](par::Comm& c) {
      forest::Forest f = forest::Forest::new_uniform(
          c, forest::Connectivity::unit_cube(), level);
      bench::adapt_toward_point(c, f, {0.5, 0.5, 0.5}, 1, level + 1);
      mesh::Mesh m = mesh::extract_mesh(c, f);
      fem::ElementOperator op = fem::build_scalar_laplace(
          m, f.connectivity(),
          [](const std::array<double, 3>& p) {
            return std::exp(std::log(1e4) * (p[2] - 0.5));  // 1e4 contrast
          },
          0b111111);
      fem_cost = run_case(op.assemble_global(c));
    });
    std::printf("%-34s %10lld %10.3f %12.3f %8.2f\n",
                ("var-viscosity Poisson, octree L" + std::to_string(level)).c_str(),
                static_cast<long long>(fem_cost.n), fem_cost.setup,
                fem_cost.cycles, fem_cost.op_complexity);

    // (b) matched-size regular-grid 7-point Laplacian.
    const std::int64_t side = static_cast<std::int64_t>(
        std::lround(std::cbrt(static_cast<double>(fem_cost.n))));
    Cost lap = run_case(laplace_7pt(side));
    std::printf("%-34s %10lld %10.3f %12.3f %8.2f\n",
                ("7-point Laplace, " + std::to_string(side) + "^3 grid").c_str(),
                static_cast<long long>(lap.n), lap.setup, lap.cycles,
                lap.op_complexity);
  }

  std::printf(
      "\nShape check vs paper: the regular-grid Laplacian is cheaper per "
      "dof\n(simpler stencil, lower operator complexity) but both cases "
      "grow the same\nway with size — matching the paper's conclusion "
      "that the variable-viscosity\npreconditioner cannot be expected to "
      "scale better than plain Laplace AMG.\n");
  return 0;
}
